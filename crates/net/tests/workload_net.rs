//! Workload conformance across the simulated ↔ deployed gap.
//!
//! The acceptance pin: the *same* compiled workload — catastrophic 50%
//! kill at period 10, 1%/period churn thereafter — runs on the sharded
//! event engine and on a live loopback UDP cluster, and their recovery
//! trajectories agree statistically (post-recovery in-degree means within
//! 1.0, both ≥ 99% full views by the pinned period). Bit-determinism of
//! the net stack under workloads is pinned separately over the in-memory
//! mesh (`pss_net::workload` unit tests); the UDP cluster is wall-clock.
//!
//! Plus the leave/late-join runtime coverage: counters stay consistent
//! under load (zero decode failures, bounded timeouts) and the address
//! book drops departed ids and learns arrived ones.

use pss_core::{NodeDescriptor, NodeId, PeerSamplingNode, PolicyTriple, ProtocolConfig};
use pss_net::cluster::{self, ClusterConfig};
use pss_net::{MemNetwork, MemTransport, NetConfig, NetRuntime};
use pss_sim::workload::{run_workload, Workload};
use pss_sim::{EventConfig, LatencyModel, ShardedEventSimulation};

const N: usize = 128;
const C: usize = 15;

/// The acceptance schedule: converge for 10 periods, kill 50%, then churn
/// at 1%/period for 20 periods.
fn acceptance_workload() -> Workload {
    Workload::parse("quiet:10,kill:0.5,churn:0.01x20", 42).expect("valid schedule")
}

#[test]
fn acceptance_schedule_agrees_between_event_engine_and_udp_cluster() {
    let workload = acceptance_workload();
    let compiled = workload.compile(N);

    // Event engine: virtual time, jitter + latency + loss on.
    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid");
    let event_config = EventConfig {
        period: 100,
        jitter: 20,
        latency: LatencyModel::Uniform { min: 1, max: 20 },
        loss_probability: 0.02,
    };
    let mut sim =
        ShardedEventSimulation::new(protocol.clone(), event_config, 11, 2).expect("valid");
    for i in 0..N as u64 {
        let seeds: Vec<NodeDescriptor> = if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        };
        sim.add_node(seeds);
    }
    let event_records = run_workload(&mut sim, &compiled, C);

    // Loopback UDP cluster: the same compiled schedule, wall-clock driven.
    let config = ClusterConfig {
        nodes: N,
        runtimes: 2,
        protocol,
        period_ms: 100,
        jitter_ms: 20,
        periods: 0, // overridden by the workload
        introducers: 3,
        seed: 20040601,
        workload: Some(workload),
        honest_policy: None,
        broadcast: None,
    };
    let report = cluster::run(&config).expect("cluster runs");
    let net_records = &report.records;

    assert_eq!(event_records.len(), compiled.periods() as usize);
    assert_eq!(net_records.len(), compiled.periods() as usize);
    assert_eq!(report.stats.decode_failures(), 0, "{:?}", report.stats);

    // Identical membership trajectory on both stacks.
    for (e, n) in event_records.iter().zip(net_records.iter()) {
        assert_eq!(
            (e.live, e.killed, e.joined),
            (n.live, n.killed, n.joined),
            "membership diverged at period {}",
            e.period
        );
    }

    // Both converged before the kill, and the kill bit both.
    assert!(
        event_records[9].full_fraction() >= 0.99,
        "{:?}",
        event_records[9]
    );
    assert!(
        net_records[9].full_fraction() >= 0.99,
        "{:?}",
        net_records[9]
    );
    assert!(event_records[10].dead_link_fraction() >= 0.3);
    assert!(net_records[10].dead_link_fraction() >= 0.3);

    // Recovery: ≥99% full views by the pinned period on both stacks, and
    // post-recovery in-degree means within 1.0 of each other.
    const RECOVERED_BY: usize = 25;
    let e = &event_records[RECOVERED_BY - 1];
    let n = &net_records[RECOVERED_BY - 1];
    assert!(e.full_fraction() >= 0.99, "event not recovered: {e:?}");
    assert!(n.full_fraction() >= 0.99, "net not recovered: {n:?}");
    for p in RECOVERED_BY..compiled.periods() as usize {
        let (e, n) = (&event_records[p], &net_records[p]);
        assert!(
            (e.in_degree_mean - n.in_degree_mean).abs() <= 1.0,
            "period {}: in-degree means diverged (event {e:?} vs net {n:?})",
            p + 1
        );
    }
    // Self-healing on the deployed stack: dead links decayed, one live
    // component.
    let last = net_records.last().unwrap();
    assert!(last.dead_link_fraction() <= 0.08, "{last:?}");
    assert!(last.component_fraction() >= 0.98, "{last:?}");
}

/// Satellite coverage: `NetRuntime::leave` plus late `add_node` under
/// sustained load, across two runtimes on the deterministic mesh.
#[test]
fn leave_and_late_add_keep_counters_and_book_consistent() {
    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap();
    let net = MemNetwork::new(17, LatencyModel::Uniform { min: 1, max: 8 }, 0.0).expect("valid");
    let config = NetConfig {
        period: 100,
        jitter: 20,
        reply_timeout: 100,
    };
    let ta = net.endpoint();
    let tb = net.endpoint();
    let (addr_a, addr_b) = (ta.net_addr(), tb.net_addr());
    let mut a: NetRuntime<MemTransport> = NetRuntime::new(ta, config, 1).expect("valid");
    let mut b: NetRuntime<MemTransport> = NetRuntime::new(tb, config, 2).expect("valid");

    // 20 nodes on A, 20 on B, tree-bootstrapped across the runtimes.
    let node = |i: u64| PeerSamplingNode::with_seed(NodeId::new(i), protocol.clone(), i * 131 + 7);
    let addr_of = |i: u64| if i < 20 { addr_a } else { addr_b };
    for i in 0..40u64 {
        let introducers: Vec<(NodeId, pss_net::NetAddr)> = if i == 0 {
            Vec::new()
        } else {
            vec![(NodeId::new(i / 2), addr_of(i / 2))]
        };
        if i < 20 {
            a.add_node(node(i), &introducers);
        } else {
            b.add_node(node(i), &introducers);
        }
    }
    let drive = |a: &mut NetRuntime<MemTransport>, b: &mut NetRuntime<MemTransport>, to: u64| {
        // Lock-step ticks keep the mesh deterministic and both runtimes
        // under continuous load.
        let now = a.now();
        for t in now + 1..=to {
            a.run_until(t);
            b.run_until(t);
        }
    };
    drive(&mut a, &mut b, 1000);
    assert!(a.stats().requests_in > 0 && b.stats().requests_in > 0);

    // Graceful leaves on A while traffic keeps flowing.
    for i in [3u64, 7, 11] {
        assert!(a.leave(NodeId::new(i)));
        // The book drops the departed id immediately…
        assert_eq!(a.address_of(NodeId::new(i)), None, "book kept node {i}");
    }
    assert_eq!(a.alive_count(), 17);

    // …and a late joiner lands on B under load, introduced to an A node.
    let joiner = NodeId::new(40);
    b.add_node(node(40), &[(NodeId::new(0), addr_a)]);
    drive(&mut a, &mut b, 3000);

    // The arrived id's address is learned across the cluster (A hears
    // about node 40 through gossiped descriptors and its frames).
    assert_eq!(b.address_of(joiner), Some(addr_b));
    assert_eq!(
        a.address_of(joiner),
        Some(addr_b),
        "A never learned the joiner"
    );
    // The joiner integrated: full-ish view, and somebody points back.
    assert!(b.view_of(joiner).unwrap().len() >= 4);

    // Counters stayed consistent under leave + late join: the wire path
    // is clean, sends never lacked an address, and timeouts (peers gossip
    // at the departed trio until healed) stay bounded well below the
    // exchange volume.
    for (name, stats) in [("A", a.stats()), ("B", b.stats())] {
        assert_eq!(stats.decode_failures(), 0, "{name}: {stats:?}");
        assert_eq!(stats.missing_address, 0, "{name}: {stats:?}");
        assert_eq!(stats.send_failures, 0, "{name}: {stats:?}");
        assert!(
            stats.timeouts < stats.timers_fired / 4,
            "{name}: timeouts unbounded: {stats:?}"
        );
    }
    // Frames to the departed nodes were dropped as dead deliveries, not
    // errors.
    assert!(a.stats().dead_deliveries > 0);
}
