//! Differential test: the network runtime over the deterministic in-memory
//! transport, against the event-driven simulator at equal
//! `(latency, loss, period, jitter)`.
//!
//! The two stacks share the protocol state machines but nothing else — the
//! event engine moves `Request`/`Reply` values through event queues, the
//! runtime encodes them through the full wire codec and a transport mesh.
//! Their trajectories cannot be bit-identical (different RNG streams,
//! different scheduling), but the *statistics* of the overlay they build
//! must agree: in-degree mean and standard deviation, tracked over 20
//! gossip periods from the same chain bootstrap. A codec bug (dropped or
//! duplicated descriptors), a timer bug (wrong firing rate), or a loss/
//! latency mismatch all show up here as a diverging in-degree trajectory.

use pss_core::{NodeId, PeerSamplingNode, PolicyTriple, ProtocolConfig};
use pss_net::{MemNetwork, MemTransport, NetAddr, NetConfig, NetRuntime};
use pss_sim::{CsrSnapshot, EventConfig, EventSimulation, LatencyModel};

const N: usize = 200;
const C: usize = 15;
const PERIODS: u64 = 20;

fn event_config() -> EventConfig {
    EventConfig {
        period: 1000,
        jitter: 300,
        latency: LatencyModel::Uniform { min: 10, max: 200 },
        loss_probability: 0.05,
    }
}

fn protocol() -> ProtocolConfig {
    ProtocolConfig::new(PolicyTriple::newscast(), C).expect("valid")
}

#[derive(Debug, Clone, Copy)]
struct DegreeStats {
    mean: f64,
    sd: f64,
    full_fraction: f64,
}

fn stats_of(in_degrees: &[u32], out_degrees: impl Iterator<Item = usize>) -> DegreeStats {
    let n = in_degrees.len().max(1) as f64;
    let mean = in_degrees.iter().map(|&d| d as f64).sum::<f64>() / n;
    let var = in_degrees
        .iter()
        .map(|&d| {
            let diff = d as f64 - mean;
            diff * diff
        })
        .sum::<f64>()
        / n;
    let full = out_degrees.filter(|&d| d == C).count() as f64 / n;
    DegreeStats {
        mean,
        sd: var.sqrt(),
        full_fraction: full,
    }
}

/// Event-engine trajectory: per-period in-degree stats, chain bootstrap.
fn event_trajectory(seed: u64) -> Vec<DegreeStats> {
    let mut sim = EventSimulation::new(protocol(), event_config(), seed).expect("valid");
    sim.add_connected_nodes(N);
    let mut out = Vec::new();
    for _ in 0..PERIODS {
        sim.run_for(event_config().period);
        let csr = sim.as_sharded().csr_snapshot();
        let in_degrees = csr.graph().in_degrees();
        let outs: Vec<usize> = (0..csr.node_count() as u32)
            .map(|v| csr.graph().out_degree(v))
            .collect();
        out.push(stats_of(&in_degrees, outs.into_iter()));
    }
    out
}

/// Net-runtime trajectory over the in-memory mesh: same chain bootstrap,
/// same `(latency, loss, period, jitter)` — through the real wire codec.
fn net_trajectory(seed: u64) -> (Vec<DegreeStats>, pss_net::RuntimeStats) {
    let net = MemNetwork::from_event(seed ^ 0x6d65_6d6e_6574, &event_config()).expect("valid");
    let transport = net.endpoint();
    let addr = transport.net_addr();
    let mut rt: NetRuntime<MemTransport> =
        NetRuntime::new(transport, NetConfig::from_event(&event_config()), seed).expect("valid");
    for i in 0..N as u64 {
        let node = PeerSamplingNode::with_seed(NodeId::new(i), protocol(), seed ^ (i * 977 + 3));
        let introducers: Vec<(NodeId, NetAddr)> = if i == 0 {
            Vec::new()
        } else {
            vec![(NodeId::new(i - 1), addr)]
        };
        rt.add_node(node, &introducers);
    }
    let mut out = Vec::new();
    for p in 1..=PERIODS {
        rt.run_until(p * event_config().period);
        let mut rows: Vec<(NodeId, Vec<NodeId>)> = Vec::with_capacity(N);
        rt.for_each_live_view(|id, view| rows.push((id, view.ids().collect())));
        rows.sort_by_key(|(id, _)| *id);
        let csr = CsrSnapshot::from_rows(N, &rows);
        let in_degrees = csr.graph().in_degrees();
        let outs: Vec<usize> = rows.iter().map(|(_, targets)| targets.len()).collect();
        out.push(stats_of(&in_degrees, outs.into_iter()));
    }
    (out, rt.stats())
}

#[test]
fn mem_runtime_matches_event_simulation_statistically() {
    let event = event_trajectory(4242);
    let (net, net_stats) = net_trajectory(4242);
    assert_eq!(event.len(), PERIODS as usize);
    assert_eq!(net.len(), PERIODS as usize);

    // The wire path must be clean: every diverging statistic below would
    // otherwise be confounded by codec rejects.
    assert_eq!(net_stats.decode_failures(), 0, "{net_stats:?}");
    assert_eq!(net_stats.missing_address, 0, "{net_stats:?}");

    // Both stacks must converge to full views from the chain bootstrap.
    let last_e = event.last().unwrap();
    let last_n = net.last().unwrap();
    assert!(last_e.full_fraction >= 0.99, "event: {last_e:?}");
    assert!(last_n.full_fraction >= 0.99, "net: {last_n:?}");

    // In-degree mean: identical up to snapshot effects once warm (full
    // views make the mean exactly c on both sides).
    for (p, (e, n)) in event.iter().zip(net.iter()).enumerate().skip(3) {
        assert!(
            (e.mean - n.mean).abs() <= 1.0,
            "period {p}: in-degree means diverged (event {e:?} vs net {n:?})"
        );
    }
    assert!((last_e.mean - C as f64).abs() < 0.2, "event: {last_e:?}");
    assert!((last_n.mean - C as f64).abs() < 0.2, "net: {last_n:?}");

    // In-degree spread: compare the converged tail (averaged over the last
    // five periods to damp single-snapshot noise) within 20%.
    let tail = |t: &[DegreeStats]| {
        let k = t.len() - 5;
        t[k..].iter().map(|s| s.sd).sum::<f64>() / 5.0
    };
    let (sd_e, sd_n) = (tail(&event), tail(&net));
    let ratio = sd_n / sd_e;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "converged in-degree σ diverged: event {sd_e:.3} vs net {sd_n:.3} (ratio {ratio:.3})"
    );
}

#[test]
fn net_trajectory_is_deterministic() {
    // The mesh + runtime pair is seeded end to end; the whole trajectory
    // (overlay statistics and frame counts) must reproduce exactly.
    let (a, stats_a) = net_trajectory(777);
    let (b, stats_b) = net_trajectory(777);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.mean.to_bits(), y.mean.to_bits());
        assert_eq!(x.sd.to_bits(), y.sd.to_bits());
    }
    assert_eq!(stats_a, stats_b);
}
