//! Adversarial behavior on the deployed stack: the runtime's hardening
//! counters (address-book rebind rejection, reply-source validation) under
//! hand-forged frames, and the headline Byzantine result reproduced on a
//! live loopback UDP cluster — hub attackers skew in-degree under newscast
//! while the H&S swapper policy bounds the capture, with zero codec errors.

use pss_core::hs::{HsConfig, HsPeerSelection};
use pss_core::wire::{self, FrameKind};
use pss_core::{NodeDescriptor, NodeId, PeerSamplingNode, PolicyTriple, ProtocolConfig};
use pss_net::cluster::{self, ClusterConfig};
use pss_net::{MemNetwork, NetConfig, NetRuntime, Transport};
use pss_sim::audit::HonestPolicy;
use pss_sim::workload::Workload;
use pss_sim::LatencyModel;

fn protocol(c: usize) -> ProtocolConfig {
    ProtocolConfig::new(PolicyTriple::newscast(), c).unwrap()
}

fn net_config() -> NetConfig {
    NetConfig {
        period: 100,
        jitter: 10,
        reply_timeout: 100,
    }
}

/// A forged-src frame may introduce an unknown id's address but must never
/// rebind an established entry — one spoofed header cannot redirect an
/// established peer's traffic.
#[test]
fn forged_src_frame_cannot_rebind_an_established_address() {
    let net = MemNetwork::new(11, LatencyModel::Uniform { min: 1, max: 1 }, 0.0).unwrap();
    let honest_endpoint = net.endpoint();
    let honest_addr = honest_endpoint.net_addr();
    let peer_addr = net.endpoint().net_addr();
    let mut attacker = net.endpoint();
    let attacker_addr = attacker.net_addr();

    let mut rt = NetRuntime::new(honest_endpoint, net_config(), 3).unwrap();
    // Node 1 is introduced to peer 2 at `peer_addr` — the established entry.
    let node = PeerSamplingNode::with_seed(NodeId::new(1), protocol(8), 5);
    rt.add_node(node, &[(NodeId::new(2), peer_addr)]);
    assert_eq!(rt.address_of(NodeId::new(2)), Some(peer_addr));

    // The attacker claims to BE peer 2, sending from its own address.
    let mut buf = Vec::new();
    wire::encode(
        &mut buf,
        FrameKind::Request,
        false,
        NodeId::new(2),
        NodeId::new(1),
        attacker_addr,
        &[],
        |_| None,
    )
    .unwrap();
    assert!(attacker.send(honest_addr, &buf));
    rt.run_until(rt.now() + 5);

    // The established binding survives; the spoof is counted, not obeyed.
    assert_eq!(rt.address_of(NodeId::new(2)), Some(peer_addr));
    let stats = rt.stats();
    assert_eq!(stats.addr_rebinds_rejected, 1, "{stats:?}");

    // A frame from a genuinely unknown id still introduces its address.
    let mut buf = Vec::new();
    wire::encode(
        &mut buf,
        FrameKind::Request,
        false,
        NodeId::new(77),
        NodeId::new(1),
        attacker_addr,
        &[],
        |_| None,
    )
    .unwrap();
    assert!(attacker.send(honest_addr, &buf));
    rt.run_until(rt.now() + 5);
    assert_eq!(rt.address_of(NodeId::new(77)), Some(attacker_addr));
    assert_eq!(rt.stats().addr_rebinds_rejected, 1);
}

/// Replies are only absorbed from the exact peer a node has a pending
/// exchange with: a blind-fired reply frame cannot inject view content.
#[test]
fn unsolicited_reply_is_rejected_and_counted() {
    let net = MemNetwork::new(13, LatencyModel::Uniform { min: 1, max: 1 }, 0.0).unwrap();
    let honest_endpoint = net.endpoint();
    let honest_addr = honest_endpoint.net_addr();
    let mut attacker = net.endpoint();
    let attacker_addr = attacker.net_addr();

    let mut rt = NetRuntime::new(honest_endpoint, net_config(), 3).unwrap();
    let node = PeerSamplingNode::with_seed(NodeId::new(1), protocol(8), 5);
    rt.add_node(node, &[(NodeId::new(2), attacker_addr)]);

    // Node 1 has no pending exchange with id 99; fire a forged reply
    // carrying colluder descriptors.
    let colluders = [
        NodeDescriptor::fresh(NodeId::new(99)),
        NodeDescriptor::fresh(NodeId::new(98)),
    ];
    let mut buf = Vec::new();
    wire::encode(
        &mut buf,
        FrameKind::Reply,
        false,
        NodeId::new(99),
        NodeId::new(1),
        attacker_addr,
        &colluders,
        |_| Some(attacker_addr),
    )
    .unwrap();
    assert!(attacker.send(honest_addr, &buf));
    rt.run_until(rt.now() + 5);

    let stats = rt.stats();
    assert_eq!(stats.forged_replies_rejected, 1, "{stats:?}");
    assert_eq!(stats.replies_in, 0, "{stats:?}");
    let view = rt.view_of(NodeId::new(1)).unwrap();
    assert!(
        !view.contains(NodeId::new(99)) && !view.contains(NodeId::new(98)),
        "forged reply content reached the view"
    );
}

/// The headline Byzantine result on the deployed stack: a 128-node
/// loopback UDP cluster with ~2 % hub attackers. Under newscast the
/// colluders capture in-degree far beyond their share; under the H&S
/// swapper policy the capture is measurably bounded. Codec stays clean
/// under attack traffic on both runs.
#[test]
fn loopback_cluster_hub_attack_skews_newscast_and_swapper_bounds_it() {
    const C: usize = 15;
    let run_policy = |honest_policy: Option<HonestPolicy>| {
        let config = ClusterConfig {
            nodes: 128,
            runtimes: 2,
            protocol: protocol(C),
            period_ms: 100,
            jitter_ms: 20,
            periods: 0, // overridden by the workload
            introducers: 3,
            seed: 20040601,
            workload: Some(Workload::parse("adv:hub@0.02,quiet:20", 7).unwrap()),
            honest_policy,
            broadcast: None,
        };
        cluster::run(&config).expect("cluster runs")
    };

    let news = run_policy(None);
    let swap = run_policy(Some(HonestPolicy::Hs(
        HsConfig::new(C, 0, C / 2, HsPeerSelection::Rand).unwrap(),
    )));

    let news_final = news.attack_records.last().expect("attacked run audited");
    let swap_final = swap.attack_records.last().expect("attacked run audited");
    eprintln!(
        "udp newscast: skew {:.2} edge {:.3} | udp swapper: skew {:.2} edge {:.3}",
        news_final.skew(),
        news_final.attacker_edge_fraction,
        swap_final.skew(),
        swap_final.attacker_edge_fraction,
    );

    // Attackers are ~2 % of the population; clean skew would be ≈ 1.
    assert!(
        news_final.skew() >= 2.5,
        "hub attackers failed to capture the UDP cluster: {news_final:?}"
    );
    assert!(
        swap_final.skew() <= news_final.skew() * 0.6,
        "swapper did not bound the capture: {swap_final:?} vs {news_final:?}"
    );
    // Wall-clock runs are noisy; the structural claims must still hold:
    // honest overlay intact, codec clean, and attack frames all decoded.
    assert!(
        news_final.honest_component_fraction() >= 0.75,
        "{news_final:?}"
    );
    assert!(
        swap_final.honest_component_fraction() >= 0.95,
        "{swap_final:?}"
    );
    assert_eq!(news.stats.decode_failures(), 0, "{:?}", news.stats);
    assert_eq!(swap.stats.decode_failures(), 0, "{:?}", swap.stats);
}
