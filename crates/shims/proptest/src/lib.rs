//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the strategy and macro API subset this workspace's
//! test suites use.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the panic from the raw
//!   generated input (inputs are reproducible: the RNG seed is a pure
//!   function of the test name and case index),
//! * fewer strategies — ranges, tuples, [`Just`], `prop::collection::vec`,
//!   `prop::sample::select`, `prop_map`, `prop_flat_map`,
//! * default case count is 64 (override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`).

#![forbid(unsafe_code)]

use std::hash::{Hash, Hasher};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Everything a `proptest!` test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-block configuration for [`proptest!`].
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

/// Built-in strategy constructors, mirroring the `proptest::prop` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Admissible length specifications for [`vec`]: a fixed length or a
        /// half-open range of lengths.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                SizeRange {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        /// Strategy for vectors whose length is drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// Generates `Vec`s of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = if self.len.min + 1 >= self.len.max {
                    self.len.min
                } else {
                    rng.random_range(self.len.min..self.len.max)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy drawing uniformly from a fixed set of values.
        pub struct Select<T: Clone>(Vec<T>);

        /// Uniformly selects one of `options` (which must be non-empty).
        pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
            let options = options.into();
            assert!(!options.is_empty(), "select requires at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut SmallRng) -> T {
                self.0[rng.random_range(0..self.0.len())].clone()
            }
        }
    }
}

/// Builds the deterministic RNG for one test case. Public for the macro.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut hasher);
    SmallRng::seed_from_u64(hasher.finish() ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..10).prop_flat_map(|a| (Just(a), a..a + 5))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn select_picks_members(x in prop::sample::select(vec![1, 5, 9])) {
            prop_assert!([1, 5, 9].contains(&x));
        }

        #[test]
        fn flat_map_dependent_ranges((a, b) in pair()) {
            prop_assert!(b >= a && b < a + 5);
            prop_assert_eq!(a, a);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::__case_rng("t", 3);
        let b = crate::__case_rng("t", 3);
        assert_eq!(a, b);
        let c = crate::__case_rng("t", 4);
        assert_ne!(a, c);
    }
}
