//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups, `iter` and
//! `iter_batched`, `BenchmarkId`, and `Throughput`.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! enough iterations to fill a fixed measurement window; the mean
//! nanoseconds/iteration is reported on stdout. When `Throughput::Elements`
//! is set, elements/second is reported as well.
//!
//! Extra over real criterion: pass `--bench-json <path>` (or set the
//! `BENCH_JSON` environment variable) to append every measurement of the run
//! as a JSON array written to `<path>`, so perf trajectories can be tracked
//! in CI without parsing stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How long each benchmark's measurement phase runs.
const MEASURE_WINDOW: Duration = Duration::from_millis(400);
/// How long the warm-up phase runs.
const WARMUP_WINDOW: Duration = Duration::from_millis(120);

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times each
/// setup/routine pair individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (e.g. whole simulations).
    LargeInput,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id from a parameter only (the group name provides context).
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/bench[/param]`.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iterations: u64,
    /// Elements/second, when a [`Throughput`] was declared.
    pub elements_per_sec: Option<f64>,
    /// Structured run metadata (`nodes`, `shards`, `workers`, `policy`, …)
    /// declared via [`Criterion::meta`] / [`BenchmarkGroup::meta`] — emitted
    /// as a `"meta"` object in the JSON so CI scripts read parameters as
    /// fields instead of parsing them back out of `id`.
    pub meta: Vec<(String, String)>,
}

/// The benchmark runner handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
    meta: Vec<(String, String)>,
}

/// Replaces `key` in `meta` if present, else appends.
fn upsert_meta(meta: &mut Vec<(String, String)>, key: String, value: String) {
    match meta.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = value,
        None => meta.push((key, value)),
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            meta: Vec::new(),
        }
    }

    /// Declares a metadata field attached to every measurement recorded
    /// from here on (group-level [`BenchmarkGroup::meta`] overrides it
    /// key-by-key).
    pub fn meta(&mut self, key: impl Into<String>, value: impl fmt::Display) -> &mut Self {
        upsert_meta(&mut self.meta, key.into(), value.to_string());
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let m = run_bench(&id.label, None, self.meta.clone(), |b| f(b));
        self.results.push(m);
        self
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Serializes every recorded measurement as a JSON array. Metadata
    /// fields, when present, become a nested `"meta"` object; values that
    /// parse as numbers are emitted unquoted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, m) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let eps = match m.elements_per_sec {
                Some(v) => format!("{v:.1}"),
                None => "null".into(),
            };
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}, \"elements_per_sec\": {}",
                m.id, m.ns_per_iter, m.iterations, eps
            ));
            if !m.meta.is_empty() {
                out.push_str(", \"meta\": {");
                for (j, (k, v)) in m.meta.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {}", json_escape(k), json_value(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }

    /// Honors `--bench-json <path>` / `BENCH_JSON=<path>` by writing the
    /// collected measurements. Called by [`criterion_main!`] at exit.
    pub fn finalize(&self) {
        let mut args = std::env::args();
        let mut path = std::env::var("BENCH_JSON").ok();
        while let Some(a) = args.next() {
            if a == "--bench-json" {
                path = args.next();
            }
        }
        if let Some(path) = path {
            match std::fs::write(&path, self.to_json()) {
                Ok(()) => eprintln!("wrote {} measurements to {path}", self.results.len()),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

/// Escapes `\` and `"` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a metadata value: unquoted when it is a plain JSON number
/// (integer or finite decimal), quoted-and-escaped otherwise.
fn json_value(v: &str) -> String {
    let numeric = !v.is_empty()
        && v.parse::<f64>().is_ok_and(f64::is_finite)
        && v.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'));
    if numeric {
        v.to_string()
    } else {
        format!("\"{}\"", json_escape(v))
    }
}

/// A group of benchmarks sharing a name prefix, throughput annotation and
/// metadata fields.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    meta: Vec<(String, String)>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is time-boxed, so
    /// the requested sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how many elements each iteration processes; subsequent
    /// benches report elements/second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Declares a metadata field attached to subsequent measurements in
    /// this group (set again to overwrite, e.g. per parameter sweep step).
    pub fn meta(&mut self, key: impl Into<String>, value: impl fmt::Display) -> &mut Self {
        upsert_meta(&mut self.meta, key.into(), value.to_string());
        self
    }

    /// Global metadata overlaid with this group's fields.
    fn merged_meta(&self) -> Vec<(String, String)> {
        let mut merged = self.criterion.meta.clone();
        for (k, v) in &self.meta {
            upsert_meta(&mut merged, k.clone(), v.clone());
        }
        merged
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        let m = run_bench(&full, self.throughput, self.merged_meta(), |b| f(b));
        self.criterion.results.push(m);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        let m = run_bench(&full, self.throughput, self.merged_meta(), |b| f(b, input));
        self.criterion.results.push(m);
        self
    }

    /// Ends the group (measurements were recorded eagerly).
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    mode: BenchMode,
    /// (total measured nanoseconds, iterations) accumulated by `iter*`.
    outcome: Option<(u128, u64)>,
}

enum BenchMode {
    Warmup,
    Measure,
}

impl Bencher {
    /// Times `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let window = match self.mode {
            BenchMode::Warmup => WARMUP_WINDOW,
            BenchMode::Measure => MEASURE_WINDOW,
        };
        let started = Instant::now();
        let mut iterations = 0u64;
        let mut spent = 0u128;
        while iterations == 0 || started.elapsed() < window {
            // Batches amortize clock reads for fast routines.
            let batch = batch_size(iterations, spent);
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            spent += t.elapsed().as_nanos();
            iterations += batch;
        }
        self.outcome = Some((spent, iterations));
    }

    /// Times `routine` on fresh inputs built by `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let window = match self.mode {
            BenchMode::Warmup => WARMUP_WINDOW,
            BenchMode::Measure => MEASURE_WINDOW,
        };
        let started = Instant::now();
        let mut iterations = 0u64;
        let mut spent = 0u128;
        while started.elapsed() < window || iterations == 0 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            spent += t.elapsed().as_nanos();
            iterations += 1;
        }
        self.outcome = Some((spent, iterations));
    }
}

/// Picks how many iterations to run between clock reads.
fn batch_size(iterations: u64, spent_ns: u128) -> u64 {
    match (spent_ns as u64).checked_div(iterations) {
        None => 1,
        Some(per_iter) => {
            // Aim for ~100µs batches, clamped to sane bounds.
            (100_000 / per_iter.max(1)).clamp(1, 10_000)
        }
    }
}

fn run_bench(
    id: &str,
    throughput: Option<Throughput>,
    meta: Vec<(String, String)>,
    mut f: impl FnMut(&mut Bencher),
) -> Measurement {
    let mut warm = Bencher {
        mode: BenchMode::Warmup,
        outcome: None,
    };
    f(&mut warm);
    let mut bencher = Bencher {
        mode: BenchMode::Measure,
        outcome: None,
    };
    f(&mut bencher);
    let (spent, iterations) = bencher.outcome.unwrap_or((0, 0));
    let ns_per_iter = if iterations > 0 {
        spent as f64 / iterations as f64
    } else {
        0.0
    };
    let elements_per_sec = match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => Some(n as f64 * 1e9 / ns_per_iter),
        _ => None,
    };
    let m = Measurement {
        id: id.to_string(),
        ns_per_iter,
        iterations,
        elements_per_sec,
        meta,
    };
    match m.elements_per_sec {
        Some(eps) => println!(
            "{id:<50} {:>14} ns/iter   {eps:>14.0} elem/s   ({iterations} iters)",
            format_ns(ns_per_iter)
        ),
        None => println!(
            "{id:<50} {:>14} ns/iter   ({iterations} iters)",
            format_ns(ns_per_iter)
        ),
    }
    m
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3e}", ns)
    } else if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.1}", ns)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` that runs every group and honors
/// `--bench-json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("merge", 60).label, "merge/60");
        assert_eq!(BenchmarkId::from_parameter(500).label, "500");
    }

    #[test]
    fn measurements_record_and_serialize() {
        let mut c = Criterion::default();
        c.bench_function("tiny", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements().len(), 1);
        let m = &c.measurements()[0];
        assert!(m.iterations > 0);
        assert!(m.ns_per_iter >= 0.0);
        let json = c.to_json();
        assert!(json.contains("\"id\": \"tiny\""));
        assert!(json.contains("ns_per_iter"));
    }

    #[test]
    fn groups_prefix_ids_and_compute_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10);
            g.throughput(Throughput::Elements(100));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        let m = &c.measurements()[0];
        assert_eq!(m.id, "grp/7");
        assert!(m.elements_per_sec.unwrap() > 0.0);
    }

    #[test]
    fn meta_fields_merge_and_serialize() {
        let mut c = Criterion::default();
        c.meta("host", "ci-runner").meta("nodes", 1000);
        {
            let mut g = c.benchmark_group("grp");
            g.meta("nodes", 10_000).meta("policy", "newscast");
            g.bench_function("a", |b| b.iter(|| 1 + 1));
            g.meta("policy", "lpbcast");
            g.bench_function("b", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        let m = &c.measurements()[0];
        // Group meta overrides the global key, global fields survive.
        assert!(m.meta.contains(&("nodes".into(), "10000".into())));
        assert!(m.meta.contains(&("host".into(), "ci-runner".into())));
        assert!(m.meta.contains(&("policy".into(), "newscast".into())));
        assert!(c.measurements()[1]
            .meta
            .contains(&("policy".into(), "lpbcast".into())));
        let json = c.to_json();
        // Numbers unquoted, strings quoted.
        assert!(json.contains("\"nodes\": 10000"), "{json}");
        assert!(json.contains("\"policy\": \"newscast\""), "{json}");
        assert!(json.contains("\"meta\": {"), "{json}");
    }

    #[test]
    fn meta_values_render_as_json_types() {
        assert_eq!(json_value("123"), "123");
        assert_eq!(json_value("-4.5"), "-4.5");
        assert_eq!(json_value("1e9"), "1e9");
        // `inf`/`nan` parse as f64 but are not JSON numbers.
        assert_eq!(json_value("inf"), "\"inf\"");
        assert_eq!(json_value("nan"), "\"nan\"");
        assert_eq!(json_value("(rand,rand,push)"), "\"(rand,rand,push)\"");
        assert_eq!(json_value("say \"hi\""), "\"say \\\"hi\\\"\"");
        assert_eq!(json_value(""), "\"\"");
    }

    #[test]
    fn measurements_without_meta_omit_the_field() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        assert!(!c.to_json().contains("meta"));
    }

    #[test]
    fn iter_batched_measures_routine() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(c.measurements()[0].iterations > 0);
    }
}
