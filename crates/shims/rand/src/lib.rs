//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so this
//! shim provides exactly the API subset the workspace uses, with the same
//! module paths and method names as `rand` 0.9:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::SmallRng`] — xoshiro256++
//!   seeded through SplitMix64 (the same generator family real `SmallRng`
//!   uses on 64-bit targets),
//! * [`Rng::random`], [`Rng::random_range`] — value and range sampling
//!   (Lemire's widening-multiply method with rejection, so range draws are
//!   exactly uniform),
//! * [`seq::SliceRandom`] — `shuffle` / `partial_shuffle` (Fisher–Yates),
//! * [`seq::index::sample`] — distinct index sampling (Floyd's algorithm
//!   for sparse draws, partial Fisher–Yates otherwise).
//!
//! Streams are deterministic per seed but do **not** match the upstream
//! crate value-for-value; everything in this workspace derives its
//! randomness from explicit seeds routed through this shim, so results are
//! self-consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator: the single entry point for all sampling.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniformly random value of `T` (integers over their full
    /// range, floats uniform in `[0, 1)`, bools fair).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a (half-open or inclusive) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution for [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform draw from `[0, span)` by Lemire's multiply-shift with rejection
/// (no modulo bias). `span` must be non-zero.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Threshold below which the low half of the 128-bit product falls in the
    // biased zone and must be rejected: 2^64 mod span.
    let zone = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit: f64 = f64::sample_standard(rng);
        start + unit * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// This is the same generator family upstream `rand`'s `SmallRng` uses
    /// on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling: slice shuffles and distinct index draws.
pub mod seq {
    use super::Rng;

    /// Shuffle operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles only the first `amount` elements into place — a uniform
        /// random `amount`-subset in uniform random order — leaving the rest
        /// arbitrary. Returns `(shuffled, rest)`. Much cheaper than a full
        /// [`SliceRandom::shuffle`] when `amount` is small.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let remaining = (self.len() - i) as u64;
                let j = i + super::uniform_below(rng, remaining) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }

    /// Distinct-index sampling.
    pub mod index {
        use super::super::Rng;

        /// A set of distinct indices in `0..length`, as produced by
        /// [`sample`].
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True if no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`.
        ///
        /// Uses Floyd's algorithm when the draw is sparse (no `O(length)`
        /// work) and a partial Fisher–Yates otherwise.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            let mut indices = Vec::new();
            sample_into(rng, length, amount, &mut indices);
            IndexVec(indices)
        }

        /// Allocation-free variant of [`sample`] (an extension over the real
        /// `rand` API): writes the sampled indices into `out`, reusing its
        /// capacity, with an RNG draw sequence identical to [`sample`].
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample_into<R: Rng + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
            out: &mut Vec<usize>,
        ) {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            out.clear();
            if amount * 4 >= length {
                // Dense draw: partial Fisher-Yates over the full index range.
                out.extend(0..length);
                for i in 0..amount {
                    let remaining = (length - i) as u64;
                    let j = i + super::super::uniform_below(rng, remaining) as usize;
                    out.swap(i, j);
                }
                out.truncate(amount);
            } else {
                // Sparse draw: Floyd's algorithm, O(amount) expected work.
                out.reserve(amount);
                for top in (length - amount)..length {
                    let j = super::super::uniform_below(rng, top as u64 + 1) as usize;
                    if out.contains(&j) {
                        out.push(top);
                    } else {
                        out.push(j);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn random_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn partial_shuffle_selects_distinct_prefix() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        let (chosen, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(chosen.len(), 10);
        assert_eq!(rest.len(), 40);
        let mut all: Vec<u32> = chosen.to_vec();
        all.extend_from_slice(rest);
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn partial_shuffle_beyond_len_is_full_shuffle() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..5).collect();
        let (chosen, rest) = v.partial_shuffle(&mut rng, 99);
        assert_eq!(chosen.len(), 5);
        assert!(rest.is_empty());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for &(length, amount) in &[(100usize, 5usize), (100, 80), (30, 30), (10, 0)] {
            let idx = index::sample(&mut rng, length, amount);
            assert_eq!(idx.len(), amount);
            let mut v = idx.into_vec();
            assert!(v.iter().all(|&i| i < length));
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), amount);
        }
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn index_sample_rejects_oversized_amount() {
        let mut rng = SmallRng::seed_from_u64(8);
        let _ = index::sample(&mut rng, 3, 4);
    }

    #[test]
    fn index_sample_sparse_path_is_uniformish() {
        // Every index should appear at least once across many sparse draws.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 64];
        for _ in 0..2000 {
            for i in index::sample(&mut rng, 64, 4) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
