//! Property-based tests for view algebra and the protocol state machine.

use proptest::prelude::*;
use pss_core::{
    Arena, GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, PolicyTriple, ProtocolConfig,
    Reply, View, ViewSelection,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn descriptor_strategy() -> impl Strategy<Value = NodeDescriptor> {
    (0u64..50, 0u32..100).prop_map(|(id, hops)| NodeDescriptor::new(NodeId::new(id), hops))
}

fn descriptors(max: usize) -> impl Strategy<Value = Vec<NodeDescriptor>> {
    prop::collection::vec(descriptor_strategy(), 0..max)
}

fn policies() -> impl Strategy<Value = PolicyTriple> {
    prop::sample::select(PolicyTriple::all())
}

proptest! {
    #[test]
    fn view_construction_holds_invariants(ds in descriptors(60)) {
        let v = View::from_descriptors(ds.clone());
        prop_assert!(v.invariants_hold());
        // Every distinct id appears exactly once with its minimal hop count.
        for d in &ds {
            let min = ds
                .iter()
                .filter(|x| x.id() == d.id())
                .map(|x| x.hop_count())
                .min()
                .unwrap();
            prop_assert_eq!(v.hop_count_of(d.id()), Some(min));
        }
    }

    #[test]
    fn merge_is_commutative_as_a_set(a in descriptors(40), b in descriptors(40)) {
        let va = View::from_descriptors(a);
        let vb = View::from_descriptors(b);
        let ab = va.merge(&vb, None);
        let ba = vb.merge(&va, None);
        // Tie order depends on argument order (stable list semantics), but
        // the *content* — (id, hop count) pairs — must be identical.
        let as_set = |v: &View| {
            let mut pairs: Vec<(u64, u32)> =
                v.iter().map(|d| (d.id().as_u64(), d.hop_count())).collect();
            pairs.sort_unstable();
            pairs
        };
        prop_assert_eq!(as_set(&ab), as_set(&ba));
    }

    #[test]
    fn merge_is_idempotent(a in descriptors(40)) {
        let v = View::from_descriptors(a);
        prop_assert_eq!(v.merge(&v, None), v.clone());
    }

    #[test]
    fn merge_keeps_minimum_hop_count(a in descriptors(40), b in descriptors(40)) {
        let va = View::from_descriptors(a.clone());
        let vb = View::from_descriptors(b.clone());
        let m = va.merge(&vb, None);
        prop_assert!(m.invariants_hold());
        for d in a.iter().chain(b.iter()) {
            let min = a
                .iter()
                .chain(b.iter())
                .filter(|x| x.id() == d.id())
                .map(|x| x.hop_count())
                .min()
                .unwrap();
            prop_assert_eq!(m.hop_count_of(d.id()), Some(min));
        }
    }

    #[test]
    fn merge_exclusion_removes_id(a in descriptors(40), b in descriptors(40), excluded in 0u64..50) {
        let va = View::from_descriptors(a);
        let vb = View::from_descriptors(b);
        let m = va.merge(&vb, Some(NodeId::new(excluded)));
        prop_assert!(!m.contains(NodeId::new(excluded)));
    }

    #[test]
    fn select_truncates_to_capacity(ds in descriptors(80), c in 1usize..40, seed in 0u64..100) {
        for policy in [ViewSelection::Head, ViewSelection::Tail, ViewSelection::Rand] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut v = View::from_descriptors(ds.clone());
            let before = v.clone();
            v.select(policy, c, &mut rng);
            prop_assert!(v.len() <= c.max(before.len().min(c)));
            prop_assert!(v.len() == before.len().min(c));
            prop_assert!(v.invariants_hold());
            // Selection returns a subset.
            for d in v.iter() {
                prop_assert_eq!(before.hop_count_of(d.id()), Some(d.hop_count()));
            }
        }
    }

    #[test]
    fn select_head_keeps_minimal_hops(ds in descriptors(80), c in 1usize..20) {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut v = View::from_descriptors(ds);
        let before = v.clone();
        v.select(ViewSelection::Head, c, &mut rng);
        if let (Some(kept_max), true) = (v.tail().map(|d| d.hop_count()), v.len() < before.len()) {
            // Every dropped entry has hop count >= every kept entry.
            for d in before.iter() {
                if !v.contains(d.id()) {
                    prop_assert!(d.hop_count() >= kept_max);
                }
            }
        }
    }

    #[test]
    fn aging_preserves_order_and_ids(ds in descriptors(50)) {
        let mut v = View::from_descriptors(ds);
        let ids_before: Vec<NodeId> = v.ids().collect();
        let hops_before: Vec<u32> = v.iter().map(|d| d.hop_count()).collect();
        v.increase_hop_counts();
        prop_assert!(v.invariants_hold());
        let ids_after: Vec<NodeId> = v.ids().collect();
        prop_assert_eq!(ids_before, ids_after);
        for (before, after) in hops_before.iter().zip(v.iter()) {
            prop_assert_eq!(after.hop_count(), before.saturating_add(1));
        }
    }

    #[test]
    fn node_view_respects_capacity_after_any_reply(
        policy in policies(),
        c in 1usize..20,
        seeds in descriptors(30),
        incoming in descriptors(30),
        seed in 0u64..1000,
    ) {
        let config = ProtocolConfig::new(policy, c).unwrap();
        let mut node = PeerSamplingNode::with_seed(NodeId::new(999), config, seed);
        node.init(seeds);
        prop_assert!(node.view().len() <= c);
        node.handle_reply(&mut Arena::new(), NodeId::new(0), Reply { descriptors: incoming });
        prop_assert!(node.view().len() <= c);
        prop_assert!(node.view().invariants_hold());
        prop_assert!(!node.view().contains(NodeId::new(999)));
    }

    #[test]
    fn initiated_requests_match_policy(
        policy in policies(),
        seeds in descriptors(30),
        seed in 0u64..1000,
    ) {
        prop_assume!(!seeds.is_empty());
        let config = ProtocolConfig::new(policy, 10).unwrap();
        let mut node = PeerSamplingNode::with_seed(NodeId::new(999), config, seed);
        node.init(seeds);
        prop_assume!(!node.view().is_empty());
        let ex = node.initiate(&mut Arena::new()).unwrap();
        prop_assert!(node.view().contains(ex.peer));
        prop_assert_eq!(ex.request.wants_reply, policy.propagation.is_pull());
        if policy.propagation.is_push() {
            // Own fresh descriptor is always carried.
            prop_assert!(ex
                .request
                .descriptors
                .iter()
                .any(|d| d.id() == NodeId::new(999) && d.hop_count() == 0));
        } else {
            prop_assert!(ex.request.is_empty());
        }
    }

    #[test]
    fn exchanges_are_deterministic_per_seed(
        policy in policies(),
        seeds in descriptors(30),
        seed in 0u64..1000,
    ) {
        let run = || {
            let config = ProtocolConfig::new(policy, 10).unwrap();
            let mut a = PeerSamplingNode::with_seed(NodeId::new(0), config.clone(), seed);
            let mut b = PeerSamplingNode::with_seed(NodeId::new(1), config, seed + 1);
            a.init(seeds.clone().into_iter().chain([NodeDescriptor::fresh(NodeId::new(1))]));
            b.init(seeds.clone());
            let mut arena = Arena::new();
            for _ in 0..5 {
                if let Some(ex) = a.initiate(&mut arena) {
                    if ex.peer == b.id() {
                        if let Some(reply) = b.handle_request(&mut arena, a.id(), ex.request) {
                            a.handle_reply(&mut arena, b.id(), reply);
                        }
                    }
                }
            }
            (a.view().clone(), b.view().clone())
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------------------------------------------------------------------------
// Differential properties: the optimized view algebra (id-indexed views,
// hash-table duplicate resolution, fused merge+select, bulk construction)
// must be byte-identical to the retained naive reference implementation
// (`pss_core::view::reference`) — the seed's quadratic algorithms kept as an
// executable specification.
// ---------------------------------------------------------------------------

use pss_core::view::reference;
use pss_core::MergeScratch;

fn view_selections() -> impl Strategy<Value = ViewSelection> {
    prop::sample::select(vec![
        ViewSelection::Head,
        ViewSelection::Tail,
        ViewSelection::Rand,
    ])
}

proptest! {
    #[test]
    fn bulk_construction_matches_reference(ds in descriptors(60)) {
        let bulk = View::from_descriptors(ds.clone());
        prop_assert_eq!(
            bulk.descriptors(),
            reference::from_descriptors(ds.clone()).as_slice()
        );
        prop_assert!(bulk.invariants_hold());
        // And both match sequential insertion through the indexed View.
        let mut seq = View::new();
        for d in ds {
            seq.insert(d);
        }
        prop_assert_eq!(bulk.descriptors(), seq.descriptors());
        prop_assert!(seq.invariants_hold());
    }

    #[test]
    fn optimized_merge_matches_reference(
        a in descriptors(40),
        b in descriptors(40),
        excl in 0u64..50,
    ) {
        let va = View::from_descriptors(a);
        let vb = View::from_descriptors(b);
        for excluded in [None, Some(NodeId::new(excl))] {
            let merged = va.merge(&vb, excluded);
            prop_assert_eq!(
                merged.descriptors(),
                reference::merge(va.descriptors(), vb.descriptors(), excluded).as_slice()
            );
            prop_assert!(merged.invariants_hold());
        }
    }

    #[test]
    fn merge_from_matches_merge(
        received in descriptors(40),
        own in descriptors(40),
        excl in 0u64..50,
    ) {
        let rx = View::from_descriptors(received);
        let base = View::from_descriptors(own);
        let expected = rx.merge(&base, Some(NodeId::new(excl)));
        let mut scratch = MergeScratch::default();
        let mut target = base.clone();
        target.merge_from(&rx, Some(NodeId::new(excl)), &mut scratch);
        prop_assert_eq!(target.descriptors(), expected.descriptors());
        prop_assert!(target.invariants_hold());
    }

    #[test]
    fn fused_merge_select_matches_unfused(
        received in descriptors(40),
        own in descriptors(40),
        policy in view_selections(),
        c in 1usize..20,
        excl in 0u64..50,
        seed in 0u64..1000,
    ) {
        let rx = View::from_descriptors(received);
        let base = View::from_descriptors(own);
        let excluded = Some(NodeId::new(excl));
        let mut scratch = MergeScratch::default();

        let mut fused = base.clone();
        let mut rng_fused = SmallRng::seed_from_u64(seed);
        fused.merge_select_from(&rx, excluded, policy, c, &mut rng_fused, &mut scratch);

        let mut unfused = base.clone();
        let mut rng_unfused = SmallRng::seed_from_u64(seed);
        unfused.merge_from(&rx, excluded, &mut scratch);
        unfused.select(policy, c, &mut rng_unfused);

        prop_assert_eq!(fused.descriptors(), unfused.descriptors());
        prop_assert!(fused.invariants_hold());
    }

    #[test]
    fn fused_absorb_matches_reference_pipeline(
        own in descriptors(40),
        incoming in descriptors(40),
        policy in view_selections(),
        c in 1usize..20,
        excl in 0u64..50,
        seed in 0u64..1000,
    ) {
        // The optimized receive side, exactly as PeerSamplingNode runs it:
        // try the wire-buffer fast path, fall back to the general path on
        // malformed content (the RNG is untouched by a failed attempt).
        let excluded = Some(NodeId::new(excl));
        let base = View::from_descriptors(own);
        let mut optimized = base.clone();
        let mut scratch = MergeScratch::default();
        let mut rng_opt = SmallRng::seed_from_u64(seed);
        let buf: Vec<NodeDescriptor> = incoming.iter().map(|d| d.aged()).collect();
        let fast = optimized.merge_select_from_slice(
            &buf, excluded, policy, c, &mut rng_opt, &mut scratch,
        );
        if !fast {
            let mut rx = View::new();
            rx.assign_aged(incoming.iter().copied(), 1, &mut scratch);
            optimized.merge_select_from(&rx, excluded, policy, c, &mut rng_opt, &mut scratch);
        }

        // The seed pipeline: naive construction, aging, quadratic merge,
        // then selectView with an identically seeded RNG.
        let rx_ref: Vec<NodeDescriptor> = reference::from_descriptors(incoming.clone())
            .iter()
            .map(|d| d.aged())
            .collect();
        let merged = reference::merge(&rx_ref, base.descriptors(), excluded);
        let mut ref_view = View::from_descriptors(merged);
        let mut rng_ref = SmallRng::seed_from_u64(seed);
        ref_view.select(policy, c, &mut rng_ref);

        prop_assert_eq!(optimized.descriptors(), ref_view.descriptors());
        prop_assert!(optimized.invariants_hold());
    }

    #[test]
    fn lazy_index_lookups_match_entries(
        own in descriptors(40),
        incoming in descriptors(40),
        probe in 0u64..60,
    ) {
        // Views produced by the absorb fast path are unindexed; lookups
        // must behave identically before and after the index materializes.
        let mut v = View::from_descriptors(own);
        let rx = View::from_descriptors(incoming);
        let mut scratch = MergeScratch::default();
        v.merge_from(&rx, Some(NodeId::new(0)), &mut scratch);
        let id = NodeId::new(probe);
        let lazy_contains = v.contains(id);
        let lazy_hops = v.hop_count_of(id);
        prop_assert_eq!(lazy_contains, v.iter().any(|d| d.id() == id));
        // `insert` materializes the index (id 10^6 never collides with
        // generated ids); lookups must not change.
        v.insert(NodeDescriptor::new(NodeId::new(1_000_000), 99));
        prop_assert_eq!(v.contains(id), lazy_contains);
        prop_assert_eq!(v.hop_count_of(id), lazy_hops);
        prop_assert!(v.invariants_hold());
    }
}
