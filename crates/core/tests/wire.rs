//! Property-based tests for the wire codec: encode → decode is the
//! identity on arbitrary valid view content, and malformed frames are
//! rejected — never mis-decoded, never panicking.

use proptest::prelude::*;
use pss_core::wire::{
    self, DecodeError, DecodeScratch, FrameKind, NetAddr, DESCRIPTOR_LEN, HEADER_LEN,
};
use pss_core::{NodeDescriptor, NodeId};

/// An arbitrary transport address across all three families.
fn addr_strategy() -> impl Strategy<Value = NetAddr> {
    (0u8..3, 0u64..u64::MAX, 0u16..u16::MAX).prop_map(|(family, raw, port)| match family {
        0 => NetAddr::Sock(std::net::SocketAddr::new(
            std::net::IpAddr::V4(std::net::Ipv4Addr::from((raw >> 32) as u32)),
            port,
        )),
        1 => NetAddr::Sock(std::net::SocketAddr::new(
            std::net::IpAddr::V6(std::net::Ipv6Addr::from((raw as u128) << 43 | port as u128)),
            port,
        )),
        _ => NetAddr::Virtual(raw),
    })
}

/// Arbitrary valid view content: distinct ids, arbitrary ages, an address
/// per descriptor.
fn view_content(max: usize) -> impl Strategy<Value = Vec<(NodeDescriptor, NetAddr)>> {
    prop::collection::vec(((0u64..500, 0u32..2000), addr_strategy()), 0..max).prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        raw.into_iter()
            .filter(|((id, _), _)| seen.insert(*id))
            .map(|((id, age), addr)| (NodeDescriptor::new(NodeId::new(id), age), addr))
            .collect()
    })
}

fn encode_frame(
    kind: FrameKind,
    wants_reply: bool,
    src: u64,
    dst: u64,
    src_addr: NetAddr,
    content: &[(NodeDescriptor, NetAddr)],
) -> Vec<u8> {
    let descriptors: Vec<NodeDescriptor> = content.iter().map(|&(d, _)| d).collect();
    let mut buf = Vec::new();
    wire::encode(
        &mut buf,
        kind,
        wants_reply,
        NodeId::new(src),
        NodeId::new(dst),
        src_addr,
        &descriptors,
        |id| {
            content
                .iter()
                .find(|(d, _)| d.id() == id)
                .map(|&(_, addr)| addr)
        },
    )
    .expect("valid content encodes");
    buf
}

proptest! {
    #[test]
    fn roundtrip_is_identity(
        content in view_content(40),
        wants_reply in (0u8..2).prop_map(|b| b == 1),
        src in 0u64..1000,
        dst in 0u64..1000,
        src_addr in addr_strategy(),
        is_request in (0u8..2).prop_map(|b| b == 1),
    ) {
        let kind = if is_request { FrameKind::Request } else { FrameKind::Reply };
        let buf = encode_frame(kind, wants_reply, src, dst, src_addr, &content);
        prop_assert_eq!(buf.len(), HEADER_LEN + content.len() * DESCRIPTOR_LEN);

        let frame = wire::decode(&buf).expect("own frames decode");
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.wants_reply, wants_reply && is_request);
        prop_assert_eq!(frame.src, NodeId::new(src));
        prop_assert_eq!(frame.dst, NodeId::new(dst));
        prop_assert_eq!(frame.src_addr, src_addr);
        prop_assert_eq!(frame.count, content.len());

        let mut out = Vec::new();
        let mut learned = Vec::new();
        wire::read_descriptors(&frame, &mut out, &mut DecodeScratch::new(), |id, addr| {
            learned.push((id, addr));
        })
        .expect("own frames read");
        let expect_ds: Vec<NodeDescriptor> = content.iter().map(|&(d, _)| d).collect();
        let expect_addrs: Vec<(NodeId, NetAddr)> =
            content.iter().map(|&(d, a)| (d.id(), a)).collect();
        prop_assert_eq!(out, expect_ds);
        prop_assert_eq!(learned, expect_addrs);
    }

    #[test]
    fn any_truncation_is_rejected(
        content in view_content(20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let buf = encode_frame(
            FrameKind::Request,
            true,
            1,
            2,
            NetAddr::Virtual(9),
            &content,
        );
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < buf.len());
        prop_assert!(wire::decode(&buf[..cut]).is_err());
    }

    #[test]
    fn duplicate_ids_are_always_rejected(
        content in view_content(20),
        dup_age in 0u32..100,
    ) {
        prop_assume!(!content.is_empty());
        // Re-append the first descriptor with a different age: still a
        // well-formed frame shape, but invalid view content.
        let mut poisoned = content.clone();
        let (first, addr) = poisoned[0];
        poisoned.push((NodeDescriptor::new(first.id(), dup_age), addr));
        let buf = encode_frame(
            FrameKind::Reply,
            false,
            1,
            2,
            NetAddr::Virtual(9),
            &poisoned,
        );
        let frame = wire::decode(&buf).expect("shape is valid");
        let mut out = Vec::new();
        let err = wire::read_descriptors(&frame, &mut out, &mut DecodeScratch::new(), |_, _| {})
            .expect_err("duplicate ids must be rejected");
        prop_assert_eq!(err, DecodeError::DuplicateId(first.id()));
        prop_assert!(out.is_empty());
    }

    /// Fuzz-style mutation: XOR a handful of random bytes at random
    /// offsets of a valid frame. Decoding must stay *total* — every
    /// mutant either still parses (and then content reads are total too)
    /// or is rejected with a typed [`DecodeError`]; nothing panics, and a
    /// mutation set that cancels itself out must still round-trip.
    #[test]
    fn random_byte_mutations_never_panic_and_decode_stays_total(
        content in view_content(12),
        wants_reply in (0u8..2).prop_map(|b| b == 1),
        is_request in (0u8..2).prop_map(|b| b == 1),
        mutations in prop::collection::vec((0usize..4096, 1u16..256), 1..8),
    ) {
        let kind = if is_request { FrameKind::Request } else { FrameKind::Reply };
        let original = encode_frame(kind, wants_reply, 1, 2, NetAddr::Virtual(9), &content);
        let mut buf = original.clone();
        for &(offset, xor) in &mutations {
            let i = offset % buf.len();
            buf[i] ^= xor as u8;
        }
        match wire::decode(&buf) {
            Ok(frame) => {
                let mut out = Vec::new();
                let read = wire::read_descriptors(
                    &frame,
                    &mut out,
                    &mut DecodeScratch::new(),
                    |_, _| {},
                );
                if buf == original {
                    // The XORs cancelled out: this is the valid frame and
                    // the full round-trip must hold.
                    prop_assert_eq!(frame.kind, kind);
                    prop_assert_eq!(frame.count, content.len());
                    prop_assert!(read.is_ok());
                    let expect: Vec<NodeDescriptor> =
                        content.iter().map(|&(d, _)| d).collect();
                    prop_assert_eq!(out, expect);
                } else if let Err(err) = read {
                    // Mutants that survive the frame checks but carry
                    // poisoned content fail with a typed error and leave
                    // no partial output behind.
                    let _: DecodeError = err;
                    prop_assert!(out.is_empty(), "partial output after {err:?}");
                }
            }
            // Rejected mutants carry a typed error — reaching here at all
            // (rather than unwinding) is the property.
            Err(err) => { let _: DecodeError = err; }
        }
    }

    #[test]
    fn corrupting_the_length_or_magic_is_rejected(
        content in view_content(10),
        byte in 0usize..8,
        xor in 1u16..256,
    ) {
        // Bytes 0..8 are the length prefix and magic: any single-bit damage
        // there must be fatal.
        let mut buf = encode_frame(
            FrameKind::Request,
            false,
            1,
            2,
            NetAddr::Virtual(9),
            &content,
        );
        buf[byte] ^= xor as u8;
        prop_assert!(wire::decode(&buf).is_err());
    }
}

#[test]
fn oversized_frames_are_rejected() {
    // A descriptor count over the limit with a consistent length prefix
    // and body size: only the explicit bound can reject it.
    let count = wire::MAX_DESCRIPTORS + 1;
    let mut buf = encode_frame(FrameKind::Request, false, 1, 2, NetAddr::Virtual(9), &[]);
    buf[47..49].copy_from_slice(&(count as u16).to_le_bytes());
    buf.resize(HEADER_LEN + count * DESCRIPTOR_LEN, 0);
    let payload = (buf.len() - 4) as u32;
    buf[0..4].copy_from_slice(&payload.to_le_bytes());
    assert!(matches!(
        wire::decode(&buf),
        Err(DecodeError::Oversized { count: c }) if c == count
    ));
}
