//! The wire codec: a versioned, length-prefixed binary frame format for
//! [`Request`]/[`Reply`] messages carried over real transports.
//!
//! The simulators move [`crate::Request`]/[`crate::Reply`] values between
//! nodes in-process; a deployment has to put them on a wire. This module
//! defines that wire form — used by the `pss-net` crate's UDP and in-memory
//! transports — with three properties the in-process types do not need:
//!
//! 1. **Addresses travel with descriptors.** In the paper's system model a
//!    descriptor *is* an address ("an address that is needed for sending a
//!    message to that node"); in-process the opaque [`NodeId`] plays that
//!    role. On the wire every descriptor carries `(id, age, address)` — a
//!    [`NetAddr`] — so receivers learn how to reach every node they hear
//!    about, exactly as gossip membership requires.
//! 2. **Strict decoding.** Frames from a network are untrusted:
//!    [`decode`] and [`read_descriptors`] are bounds-checked everywhere and
//!    reject truncated, oversized, length-mismatched, bad-magic/-version,
//!    and duplicate-id frames with a typed [`DecodeError`] instead of
//!    panicking or silently truncating.
//! 3. **Zero-copy decode into staging buffers.** [`read_descriptors`]
//!    appends straight into a caller-provided buffer (in practice a
//!    recycled [`crate::staging`] message buffer), so a received frame is
//!    absorbed by the fused [`crate::View::merge_select_from_slice`] path
//!    without any intermediate allocation.
//!
//! # Frame layout
//!
//! All multi-byte integers are **little-endian**. One frame:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length: bytes after this field (u32 LE)
//! 4       4     magic "PSSW"
//! 8       1     version (currently 2; decoders accept 1..=2)
//! 9       1     kind: 1 = request, 2 = reply, 3 = app (version ≥ 2)
//! 10      1     flags: bit 0 = wants_reply (requests only; else 0)
//! 11      1     reserved (0)
//! 12      8     source node id (u64 LE)
//! 20      8     destination node id (u64 LE)
//! 28      19    source address (see below)
//! 47      2     descriptor count (u16 LE)
//! 49      31×n  descriptors
//! ```
//!
//! One descriptor (31 bytes):
//!
//! ```text
//! offset  size  field
//! 0       8     node id (u64 LE)
//! 8       4     age / hop count (u32 LE)
//! 12      19    address
//! ```
//!
//! The age field's *semantics* are version-gated: version-1 senders always
//! wrote hop counts; version-2 frames carry whatever age dimension the
//! deployment runs ([`crate::Freshness`] — hop counts by default,
//! clock-derived timestamp ages under [`crate::Freshness::Timestamp`]).
//! The bytes are identical either way; see [`Frame::version`] for the
//! receiver-side rule.
//!
//! One address (19 bytes): a tag byte, 16 address bytes, and a port:
//!
//! ```text
//! tag 4: IPv4 — 4 address bytes, 12 zero bytes, u16 LE port
//! tag 6: IPv6 — 16 address bytes, u16 LE port
//! tag 0: virtual endpoint — u64 LE endpoint id, 8 zero bytes, zero port
//! ```
//!
//! The virtual tag exists for deterministic in-memory transports, which
//! address endpoints by integer id; it round-trips through the identical
//! codec so the in-memory mesh exercises the exact bytes the UDP transport
//! sends.

use core::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

use crate::{NodeDescriptor, NodeId};

/// Frame magic: the first four payload bytes of every frame.
pub const MAGIC: [u8; 4] = *b"PSSW";

/// Current codec version. Version 2 added the [`FrameKind::App`]
/// application frame; headers are otherwise unchanged, so version-1 frames
/// remain decodable ([`MIN_VERSION`]).
pub const VERSION: u8 = 2;

/// Oldest codec version decoders still accept.
pub const MIN_VERSION: u8 = 1;

/// Encoded size of a [`NetAddr`].
pub const ADDR_LEN: usize = 19;

/// Encoded size of one descriptor: id (8) + age (4) + address (19).
pub const DESCRIPTOR_LEN: usize = 8 + 4 + ADDR_LEN;

/// Full header size, including the 4-byte length prefix.
pub const HEADER_LEN: usize = 4 + 4 + 1 + 1 + 1 + 1 + 8 + 8 + ADDR_LEN + 2;

/// Upper bound on descriptors per frame; decoding rejects larger counts.
/// Generous relative to practical view sizes (the paper uses c ≤ 30), tight
/// enough to bound the decode cost of a hostile frame.
pub const MAX_DESCRIPTORS: usize = 1024;

/// Largest possible frame in bytes.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + MAX_DESCRIPTORS * DESCRIPTOR_LEN;

/// A transport-level address, as carried on the wire.
///
/// Real transports use socket addresses; deterministic in-memory transports
/// address endpoints by integer id. Virtual node ids ([`NodeId`]) map to
/// `NetAddr`s through the runtime's address book, which is populated from
/// bootstrap introducers and from every received descriptor.
///
/// IPv6 addresses are carried as octets + port only: `scope_id` and
/// `flowinfo` are not encoded, so a link-local address round-trips with
/// scope 0. Cross-host deployment over link-local scopes needs a wire
/// revision (tracked in the ROADMAP alongside NAT-safe address learning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetAddr {
    /// A real socket address (UDP in `pss-net`).
    Sock(SocketAddr),
    /// A virtual endpoint id (in-memory transport mesh).
    Virtual(u64),
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddr::Sock(s) => write!(f, "{s}"),
            NetAddr::Virtual(v) => write!(f, "mem:{v}"),
        }
    }
}

/// Address tag bytes.
const TAG_VIRTUAL: u8 = 0;
const TAG_V4: u8 = 4;
const TAG_V6: u8 = 6;

/// Frame kind: which protocol message the frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An active-thread request ([`crate::Request`]).
    Request,
    /// A passive-thread reply ([`crate::Reply`]).
    Reply,
    /// An application payload riding the gossip wire (codec version ≥ 2):
    /// same length-prefixed header, and the descriptor region is free for
    /// app use (the broadcast storm sends it empty — the frame itself is
    /// the rumor). App frames never want a reply and carry zero flags.
    App,
}

const KIND_REQUEST: u8 = 1;
const KIND_REPLY: u8 = 2;
const KIND_APP: u8 = 3;
const FLAG_WANTS_REPLY: u8 = 0b0000_0001;

/// Why a frame could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// More descriptors than [`MAX_DESCRIPTORS`].
    TooManyDescriptors(usize),
    /// The address book has no address for a view entry — the caller must
    /// skip the send (it has nobody to route the descriptor to).
    MissingAddress(NodeId),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooManyDescriptors(n) => {
                write!(
                    f,
                    "{n} descriptors exceed the frame limit {MAX_DESCRIPTORS}"
                )
            }
            EncodeError::MissingAddress(id) => write!(f, "no known address for {id}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Why a frame was rejected by [`decode`] or [`read_descriptors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a full header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// The magic bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported codec version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Flag bits outside the defined set, or `wants_reply` on a reply.
    BadFlags(u8),
    /// The length prefix disagrees with the actual byte count.
    LengthMismatch {
        /// Payload length the prefix declares.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The descriptor count exceeds [`MAX_DESCRIPTORS`].
    Oversized {
        /// The declared count.
        count: usize,
    },
    /// The descriptor region size is not `count × DESCRIPTOR_LEN`.
    BodySizeMismatch {
        /// Declared descriptor count.
        count: usize,
        /// Bytes in the descriptor region.
        body: usize,
    },
    /// An address tag byte is not 0/4/6.
    BadAddrTag(u8),
    /// The same node id appears in two descriptors — valid view content
    /// holds at most one descriptor per node.
    DuplicateId(NodeId),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::BadFlags(b) => write!(f, "invalid flags {b:#010b}"),
            DecodeError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length prefix says {declared} payload bytes, found {actual}"
                )
            }
            DecodeError::Oversized { count } => {
                write!(
                    f,
                    "{count} descriptors exceed the frame limit {MAX_DESCRIPTORS}"
                )
            }
            DecodeError::BodySizeMismatch { count, body } => write!(
                f,
                "descriptor region is {body} bytes, expected {count} × {DESCRIPTOR_LEN}"
            ),
            DecodeError::BadAddrTag(t) => write!(f, "unknown address tag {t}"),
            DecodeError::DuplicateId(id) => write!(f, "duplicate descriptor id {id}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded frame header plus its (validated-size) descriptor region.
///
/// Produced by [`decode`]; borrow of the receive buffer, nothing copied.
/// Descriptor *contents* (address tags, duplicate ids) are validated by
/// [`read_descriptors`], which is the copying step.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Codec version the sender encoded with (`MIN_VERSION..=VERSION`).
    ///
    /// Version gates the *semantics* of the descriptor age field: a
    /// version-1 sender can only have produced hop counts, while version-2
    /// frames carry whatever the deployment's [`crate::Freshness`] mode
    /// defines (hop counts by default, clock-derived timestamp ages under
    /// [`crate::Freshness::Timestamp`]). Receivers running timestamp
    /// freshness must therefore refuse version-1 protocol frames — mixing
    /// hop counts into a timestamp-ordered view would corrupt its eviction
    /// order silently.
    pub version: u8,
    /// Request or reply.
    pub kind: FrameKind,
    /// For requests: must the receiver answer with its own view?
    pub wants_reply: bool,
    /// Sending node.
    pub src: NodeId,
    /// Destination node (one transport endpoint multiplexes many).
    pub dst: NodeId,
    /// The sender's transport address, for replying and address learning.
    pub src_addr: NetAddr,
    /// Number of descriptors carried.
    pub count: usize,
    /// The raw descriptor region, exactly `count × DESCRIPTOR_LEN` bytes.
    body: &'a [u8],
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn put_addr(buf: &mut Vec<u8>, addr: NetAddr) {
    match addr {
        NetAddr::Sock(SocketAddr::V4(s)) => {
            buf.push(TAG_V4);
            buf.extend_from_slice(&s.ip().octets());
            buf.extend_from_slice(&[0u8; 12]);
            put_u16(buf, s.port());
        }
        NetAddr::Sock(SocketAddr::V6(s)) => {
            buf.push(TAG_V6);
            buf.extend_from_slice(&s.ip().octets());
            put_u16(buf, s.port());
        }
        NetAddr::Virtual(v) => {
            buf.push(TAG_VIRTUAL);
            put_u64(buf, v);
            buf.extend_from_slice(&[0u8; 8]);
            put_u16(buf, 0);
        }
    }
}

fn get_addr(b: &[u8]) -> Result<NetAddr, DecodeError> {
    debug_assert_eq!(b.len(), ADDR_LEN);
    match b[0] {
        TAG_V4 => {
            let ip = Ipv4Addr::new(b[1], b[2], b[3], b[4]);
            let port = get_u16(&b[17..19]);
            Ok(NetAddr::Sock(SocketAddr::new(IpAddr::V4(ip), port)))
        }
        TAG_V6 => {
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&b[1..17]);
            let port = get_u16(&b[17..19]);
            Ok(NetAddr::Sock(SocketAddr::new(
                IpAddr::V6(Ipv6Addr::from(octets)),
                port,
            )))
        }
        TAG_VIRTUAL => Ok(NetAddr::Virtual(get_u64(&b[1..9]))),
        tag => Err(DecodeError::BadAddrTag(tag)),
    }
}

/// Encodes one frame into `buf` (cleared first, so a reused buffer is
/// allocation-free in steady state).
///
/// `addr_of` resolves each descriptor's transport address — the caller's
/// address book. Protocol invariants guarantee the book covers every view
/// entry (entries only arrive via decoded frames or bootstrap introducers,
/// both of which feed the book), so [`EncodeError::MissingAddress`] means a
/// caller-side bookkeeping bug; callers count it and skip the send.
///
/// # Errors
///
/// [`EncodeError::TooManyDescriptors`] above [`MAX_DESCRIPTORS`], or
/// [`EncodeError::MissingAddress`] from `addr_of`.
#[allow(clippy::too_many_arguments)]
pub fn encode(
    buf: &mut Vec<u8>,
    kind: FrameKind,
    wants_reply: bool,
    src: NodeId,
    dst: NodeId,
    src_addr: NetAddr,
    descriptors: &[NodeDescriptor],
    mut addr_of: impl FnMut(NodeId) -> Option<NetAddr>,
) -> Result<(), EncodeError> {
    if descriptors.len() > MAX_DESCRIPTORS {
        return Err(EncodeError::TooManyDescriptors(descriptors.len()));
    }
    buf.clear();
    buf.reserve(HEADER_LEN + descriptors.len() * DESCRIPTOR_LEN);
    let payload = (HEADER_LEN - 4) + descriptors.len() * DESCRIPTOR_LEN;
    put_u32(buf, payload as u32);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(match kind {
        FrameKind::Request => KIND_REQUEST,
        FrameKind::Reply => KIND_REPLY,
        FrameKind::App => KIND_APP,
    });
    buf.push(if wants_reply && kind == FrameKind::Request {
        FLAG_WANTS_REPLY
    } else {
        0
    });
    buf.push(0); // reserved
    put_u64(buf, src.as_u64());
    put_u64(buf, dst.as_u64());
    put_addr(buf, src_addr);
    put_u16(buf, descriptors.len() as u16);
    for d in descriptors {
        let addr = addr_of(d.id()).ok_or(EncodeError::MissingAddress(d.id()))?;
        put_u64(buf, d.id().as_u64());
        put_u32(buf, d.hop_count());
        put_addr(buf, addr);
    }
    debug_assert_eq!(buf.len(), payload + 4);
    Ok(())
}

/// Decodes and validates a frame header from one received datagram/frame.
///
/// `bytes` must be exactly one frame (datagram transports deliver framed
/// messages; stream transports split on the length prefix first). The
/// descriptor region's *size* is validated here; its contents are validated
/// by [`read_descriptors`].
///
/// # Errors
///
/// Any [`DecodeError`] except [`DecodeError::DuplicateId`], which only
/// [`read_descriptors`] can produce. ([`DecodeError::BadAddrTag`] can come
/// from either step: here for a corrupt header source address, from
/// `read_descriptors` for a corrupt descriptor address.)
pub fn decode(bytes: &[u8]) -> Result<Frame<'_>, DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            need: HEADER_LEN,
            have: bytes.len(),
        });
    }
    let declared = get_u32(&bytes[0..4]) as usize;
    let actual = bytes.len() - 4;
    if declared != actual {
        return Err(DecodeError::LengthMismatch { declared, actual });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[4..8]);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = bytes[8];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DecodeError::BadVersion(version));
    }
    let kind = match bytes[9] {
        KIND_REQUEST => FrameKind::Request,
        KIND_REPLY => FrameKind::Reply,
        // App frames entered the codec in version 2; a version-1 sender
        // cannot legally have produced one.
        KIND_APP if version >= 2 => FrameKind::App,
        k => return Err(DecodeError::BadKind(k)),
    };
    let flags = bytes[10];
    if flags & !FLAG_WANTS_REPLY != 0 || (kind != FrameKind::Request && flags != 0) {
        return Err(DecodeError::BadFlags(flags));
    }
    let src = NodeId::new(get_u64(&bytes[12..20]));
    let dst = NodeId::new(get_u64(&bytes[20..28]));
    let src_addr = get_addr(&bytes[28..28 + ADDR_LEN])?;
    let count = get_u16(&bytes[47..49]) as usize;
    if count > MAX_DESCRIPTORS {
        return Err(DecodeError::Oversized { count });
    }
    let body = &bytes[HEADER_LEN..];
    if body.len() != count * DESCRIPTOR_LEN {
        return Err(DecodeError::BodySizeMismatch {
            count,
            body: body.len(),
        });
    }
    Ok(Frame {
        version,
        kind,
        wants_reply: flags & FLAG_WANTS_REPLY != 0,
        src,
        dst,
        src_addr,
        count,
        body,
    })
}

/// Reusable duplicate-id detection table for [`read_descriptors`]: an
/// epoch-stamped open-addressing set, so repeated decodes share one
/// allocation and never pay a clear.
#[derive(Default)]
pub struct DecodeScratch {
    keys: Vec<u64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl DecodeScratch {
    /// Creates an empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// Prepares the table for `n` insertions and bumps the epoch.
    fn begin(&mut self, n: usize) {
        let capacity = (n * 4).next_power_of_two().max(64);
        if self.keys.len() < capacity {
            self.keys = vec![0; capacity];
            self.stamps = vec![0; capacity];
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `key`; false if it was already present this epoch.
    fn insert(&mut self, key: u64) -> bool {
        let mask = self.keys.len() - 1;
        // SplitMix64-style scramble for the probe start.
        let mut h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        let mut i = (h as usize) & mask;
        loop {
            if self.stamps[i] != self.epoch {
                self.stamps[i] = self.epoch;
                self.keys[i] = key;
                return true;
            }
            if self.keys[i] == key {
                return false;
            }
            i = (i + 1) & mask;
        }
    }
}

/// Validates and copies a frame's descriptors into `out`, feeding every
/// `(id, address)` pair to `learn` (the caller's address book).
///
/// `out` is cleared first: pass a recycled [`crate::staging`] message
/// buffer and the whole receive path — decode, absorb via
/// [`crate::View::merge_select_from_slice`], recycle — is allocation-free
/// in steady state. Descriptors are appended exactly as sent (un-aged);
/// receivers age them during the absorb, as the protocol skeleton
/// specifies.
///
/// # Errors
///
/// [`DecodeError::BadAddrTag`] or [`DecodeError::DuplicateId`]; `out` is
/// left cleared on error so a rejected frame cannot leak partial content.
pub fn read_descriptors(
    frame: &Frame<'_>,
    out: &mut Vec<NodeDescriptor>,
    scratch: &mut DecodeScratch,
    mut learn: impl FnMut(NodeId, NetAddr),
) -> Result<(), DecodeError> {
    out.clear();
    scratch.begin(frame.count);
    for chunk in frame.body.chunks_exact(DESCRIPTOR_LEN) {
        let id = NodeId::new(get_u64(&chunk[0..8]));
        let age = get_u32(&chunk[8..12]);
        let addr = match get_addr(&chunk[12..12 + ADDR_LEN]) {
            Ok(addr) => addr,
            Err(e) => {
                out.clear();
                return Err(e);
            }
        };
        if !scratch.insert(id.as_u64()) {
            out.clear();
            return Err(DecodeError::DuplicateId(id));
        }
        out.push(NodeDescriptor::new(id, age));
        learn(id, addr);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(port: u16) -> NetAddr {
        NetAddr::Sock(SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), port))
    }

    fn sample_frame(descriptors: &[NodeDescriptor]) -> Vec<u8> {
        let mut buf = Vec::new();
        encode(
            &mut buf,
            FrameKind::Request,
            true,
            NodeId::new(7),
            NodeId::new(9),
            v4(4100),
            descriptors,
            |id| Some(v4(5000 + id.as_u64() as u16)),
        )
        .expect("encodes");
        buf
    }

    #[test]
    fn header_roundtrip() {
        let buf = sample_frame(&[]);
        assert_eq!(buf.len(), HEADER_LEN);
        let frame = decode(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::Request);
        assert!(frame.wants_reply);
        assert_eq!(frame.src, NodeId::new(7));
        assert_eq!(frame.dst, NodeId::new(9));
        assert_eq!(frame.src_addr, v4(4100));
        assert_eq!(frame.count, 0);
    }

    #[test]
    fn descriptor_roundtrip_with_addresses() {
        let ds = [
            NodeDescriptor::new(NodeId::new(1), 0),
            NodeDescriptor::new(NodeId::new(2), 3),
            NodeDescriptor::new(NodeId::new(40), 9),
        ];
        let buf = sample_frame(&ds);
        let frame = decode(&buf).unwrap();
        assert_eq!(frame.count, 3);
        let mut out = Vec::new();
        let mut learned = Vec::new();
        read_descriptors(&frame, &mut out, &mut DecodeScratch::new(), |id, addr| {
            learned.push((id, addr))
        })
        .unwrap();
        assert_eq!(out, ds);
        assert_eq!(learned[0], (NodeId::new(1), v4(5001)));
        assert_eq!(learned[2], (NodeId::new(40), v4(5040)));
    }

    #[test]
    fn all_address_families_roundtrip() {
        let addrs = [
            v4(80),
            NetAddr::Sock(SocketAddr::new(
                IpAddr::V6(Ipv6Addr::new(0xfe80, 0, 0, 0, 1, 2, 3, 4)),
                6000,
            )),
            NetAddr::Virtual(0xdead_beef_1234_5678),
        ];
        for addr in addrs {
            let mut buf = Vec::new();
            put_addr(&mut buf, addr);
            assert_eq!(buf.len(), ADDR_LEN);
            assert_eq!(get_addr(&buf).unwrap(), addr);
        }
    }

    #[test]
    fn reply_flags_must_be_zero() {
        let mut buf = Vec::new();
        encode(
            &mut buf,
            FrameKind::Reply,
            true, // ignored for replies
            NodeId::new(1),
            NodeId::new(2),
            v4(1),
            &[],
            |_| Some(v4(1)),
        )
        .unwrap();
        let frame = decode(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::Reply);
        assert!(!frame.wants_reply);
    }

    #[test]
    fn app_frames_roundtrip_and_are_version_gated() {
        let mut buf = Vec::new();
        encode(
            &mut buf,
            FrameKind::App,
            true, // ignored for app frames
            NodeId::new(3),
            NodeId::new(8),
            v4(4100),
            &[],
            |_| Some(v4(1)),
        )
        .unwrap();
        let frame = decode(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::App);
        assert!(!frame.wants_reply);
        assert_eq!(frame.count, 0);

        // A version-1 frame cannot carry the app kind…
        let mut v1 = buf.clone();
        v1[8] = 1;
        assert_eq!(decode(&v1).unwrap_err(), DecodeError::BadKind(KIND_APP));
        // …and app flags must be zero.
        let mut flagged = buf.clone();
        flagged[10] = FLAG_WANTS_REPLY;
        assert!(matches!(decode(&flagged), Err(DecodeError::BadFlags(_))));
    }

    #[test]
    fn version_1_request_frames_still_decode() {
        let buf2 = sample_frame(&[NodeDescriptor::new(NodeId::new(1), 2)]);
        assert_eq!(decode(&buf2).unwrap().version, VERSION);
        let mut buf = buf2;
        buf[8] = 1;
        let frame = decode(&buf).expect("v1 frames stay decodable");
        assert_eq!(frame.kind, FrameKind::Request);
        // The sender's version is surfaced: receivers running timestamp
        // freshness gate the age-field semantics on it.
        assert_eq!(frame.version, 1);
        assert!(decode(&{
            let mut b = buf.clone();
            b[8] = 0;
            b
        })
        .is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let buf = sample_frame(&[NodeDescriptor::new(NodeId::new(1), 2)]);
        for cut in 0..buf.len() {
            assert!(decode(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
        assert!(decode(&buf).is_ok());
    }

    #[test]
    fn rejects_corrupt_header_fields() {
        let good = sample_frame(&[]);
        let mutate = |at: usize, to: u8| {
            let mut b = good.clone();
            b[at] = to;
            decode(&b).expect_err("must reject")
        };
        assert!(matches!(mutate(4, b'X'), DecodeError::BadMagic(_)));
        assert!(matches!(mutate(8, 9), DecodeError::BadVersion(9)));
        assert!(matches!(mutate(9, 7), DecodeError::BadKind(7)));
        assert!(matches!(mutate(10, 0b10), DecodeError::BadFlags(_)));
        assert!(matches!(mutate(0, 1), DecodeError::LengthMismatch { .. }));
        // Declared count without the bytes to back it.
        assert!(matches!(
            mutate(47, 2),
            DecodeError::BodySizeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_oversized_count() {
        let mut buf = sample_frame(&[]);
        let count = (MAX_DESCRIPTORS + 1) as u16;
        buf[47..49].copy_from_slice(&count.to_le_bytes());
        // Fix the length prefix so the oversize check itself is reached.
        let payload = (HEADER_LEN - 4) + (count as usize) * DESCRIPTOR_LEN;
        let mut b = buf.clone();
        b.resize(HEADER_LEN + count as usize * DESCRIPTOR_LEN, 0);
        b[0..4].copy_from_slice(&(payload as u32).to_le_bytes());
        assert!(matches!(
            decode(&b),
            Err(DecodeError::Oversized { count: c }) if c == count as usize
        ));
    }

    #[test]
    fn rejects_duplicate_ids_and_clears_out() {
        let ds = [
            NodeDescriptor::new(NodeId::new(3), 0),
            NodeDescriptor::new(NodeId::new(4), 1),
            NodeDescriptor::new(NodeId::new(3), 5),
        ];
        let buf = sample_frame(&ds);
        let frame = decode(&buf).unwrap();
        let mut out = vec![NodeDescriptor::fresh(NodeId::new(99))];
        let err = read_descriptors(&frame, &mut out, &mut DecodeScratch::new(), |_, _| {})
            .expect_err("duplicate must be rejected");
        assert_eq!(err, DecodeError::DuplicateId(NodeId::new(3)));
        assert!(out.is_empty(), "partial content must not leak");
    }

    #[test]
    fn rejects_bad_address_tag() {
        let buf = sample_frame(&[NodeDescriptor::new(NodeId::new(1), 2)]);
        let mut b = buf.clone();
        b[HEADER_LEN + 12] = 9; // descriptor address tag
        let frame = decode(&b).unwrap();
        let err = read_descriptors(
            &frame,
            &mut Vec::new(),
            &mut DecodeScratch::new(),
            |_, _| {},
        )
        .expect_err("bad tag must be rejected");
        assert_eq!(err, DecodeError::BadAddrTag(9));
        // Header-level address tag is checked by decode itself.
        let mut h = buf;
        h[28] = 9;
        assert_eq!(decode(&h).unwrap_err(), DecodeError::BadAddrTag(9));
    }

    #[test]
    fn missing_address_is_an_encode_error() {
        let mut buf = Vec::new();
        let err = encode(
            &mut buf,
            FrameKind::Request,
            false,
            NodeId::new(1),
            NodeId::new(2),
            v4(1),
            &[NodeDescriptor::fresh(NodeId::new(50))],
            |_| None,
        )
        .expect_err("must surface the missing address");
        assert_eq!(err, EncodeError::MissingAddress(NodeId::new(50)));
    }

    #[test]
    fn scratch_is_reusable_across_epochs() {
        let mut scratch = DecodeScratch::new();
        let ds = [
            NodeDescriptor::new(NodeId::new(3), 0),
            NodeDescriptor::new(NodeId::new(4), 1),
        ];
        let buf = sample_frame(&ds);
        let frame = decode(&buf).unwrap();
        let mut out = Vec::new();
        for _ in 0..100 {
            read_descriptors(&frame, &mut out, &mut scratch, |_, _| {}).unwrap();
            assert_eq!(out.len(), 2);
        }
    }

    #[test]
    fn errors_display() {
        assert!(EncodeError::TooManyDescriptors(9999)
            .to_string()
            .contains("9999"));
        assert!(EncodeError::MissingAddress(NodeId::new(5))
            .to_string()
            .contains("n5"));
        assert!(DecodeError::BadVersion(3).to_string().contains('3'));
        assert!(DecodeError::DuplicateId(NodeId::new(8))
            .to_string()
            .contains("n8"));
        assert!(NetAddr::Virtual(4).to_string().contains("mem:4"));
        assert!(v4(80).to_string().contains("127.0.0.1:80"));
    }
}
