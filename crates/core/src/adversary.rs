//! **Extension:** Byzantine peer implementations for adversarial evaluation.
//!
//! The Middleware 2004 paper evaluates peer sampling under *benign* failure
//! only; follow-up work (PeerSwap and friends) exists because gossip
//! samplers have weak randomness guarantees against *malicious*
//! participants. This module implements the classic attacks as ordinary
//! [`GossipNode`]s, so every unmodified driver — cycle simulator, event
//! engine, socket runtime, live cluster — can host a poisoned population:
//!
//! * [`HubAttacker`] — descriptor flooding / self-promotion: every message
//!   it emits is a forged buffer of age-0 attacker descriptors, gaming
//!   freshness-greedy (`head`) view selection into concentrating in-degree
//!   on the attacker set.
//! * [`AgeLiar`] — behaves like an honest node but advertises every
//!   descriptor it ships at age 0, so its (possibly stale) content always
//!   wins freshness comparisons and never decays out of views.
//! * [`ReplyForger`] — participates honestly when initiating, but answers
//!   every pull with a fabricated view pointing at a colluder set.
//! * [`EclipseAttacker`] — pounds a configured victim set with forged
//!   attacker-only buffers until the victims' views are fully
//!   attacker-controlled, while answering everyone else with innocuous
//!   honest decoys so the attack stays targeted and hard to spot.
//!
//! Placement is a pure function of node id via [`AdversaryRoles`], so the
//! identical attack trajectory drives every stack bit-for-bit: the same ids
//! are attackers under any worker count, engine, or transport.
//!
//! None of the paper-reproduction experiments route through this module;
//! it is the fault-injection layer for the robustness suite.

use core::fmt;
use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::policy::ViewSelection;
use crate::staging::Arena;
use crate::{
    Exchange, GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, ProtocolConfig, Reply, Request,
    View,
};

/// The attack implemented by a malicious node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AdversaryKind {
    /// Descriptor flooding / self-promotion with age-0 forged entries.
    Hub,
    /// Honest behavior, but every shipped descriptor claims age 0.
    AgeLiar,
    /// Honest initiator that answers pulls with fabricated colluder views.
    ReplyForger,
    /// Saturates a configured victim set with attacker-only buffers.
    Eclipse,
}

impl AdversaryKind {
    /// The workload-grammar token for this kind (`adv:<token>@fraction`).
    pub fn token(self) -> &'static str {
        match self {
            AdversaryKind::Hub => "hub",
            AdversaryKind::AgeLiar => "liar",
            AdversaryKind::ReplyForger => "forge",
            AdversaryKind::Eclipse => "eclipse",
        }
    }
}

impl fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Error parsing an [`AdversaryKind`] token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAdversaryError(String);

impl fmt::Display for ParseAdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown adversary kind {:?} (expected hub, liar, forge, or eclipse)",
            self.0
        )
    }
}

impl std::error::Error for ParseAdversaryError {}

impl FromStr for AdversaryKind {
    type Err = ParseAdversaryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hub" => Ok(AdversaryKind::Hub),
            "liar" => Ok(AdversaryKind::AgeLiar),
            "forge" => Ok(AdversaryKind::ReplyForger),
            "eclipse" => Ok(AdversaryKind::Eclipse),
            other => Err(ParseAdversaryError(other.to_string())),
        }
    }
}

/// An invalid adversary specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryError {
    /// The attacker fraction must be in `(0, 0.5]`.
    BadFraction,
    /// Eclipse attacks need a non-empty victim set; other kinds take none.
    BadVictims,
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::BadFraction => write!(f, "attacker fraction must be in (0, 0.5]"),
            AdversaryError::BadVictims => write!(
                f,
                "victim count must be positive for eclipse and absent otherwise"
            ),
        }
    }
}

impl std::error::Error for AdversaryError {}

/// A declarative attack specification: which attack, how much of the
/// population is malicious, and (for eclipse) how many victims.
///
/// Compiled against a concrete population size into [`AdversaryRoles`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdversarySpec {
    kind: AdversaryKind,
    fraction: f64,
    victims: u64,
}

impl AdversarySpec {
    /// A non-eclipse attack placing `fraction` of the initial population
    /// under attacker control.
    pub fn new(kind: AdversaryKind, fraction: f64) -> Result<Self, AdversaryError> {
        if !(fraction > 0.0 && fraction <= 0.5) {
            return Err(AdversaryError::BadFraction);
        }
        if kind == AdversaryKind::Eclipse {
            return Err(AdversaryError::BadVictims);
        }
        Ok(AdversarySpec {
            kind,
            fraction,
            victims: 0,
        })
    }

    /// An eclipse attack against the first `victims` honest ids.
    pub fn eclipse(fraction: f64, victims: u64) -> Result<Self, AdversaryError> {
        if !(fraction > 0.0 && fraction <= 0.5) {
            return Err(AdversaryError::BadFraction);
        }
        if victims == 0 {
            return Err(AdversaryError::BadVictims);
        }
        Ok(AdversarySpec {
            kind: AdversaryKind::Eclipse,
            fraction,
            victims,
        })
    }

    /// The attack kind.
    pub fn kind(&self) -> AdversaryKind {
        self.kind
    }

    /// The malicious fraction of the initial population.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The requested victim count (0 unless eclipse).
    pub fn victims(&self) -> u64 {
        self.victims
    }
}

/// The compiled per-id role assignment for one attacked population.
///
/// Roles are a pure function of `(spec, population, id)`: attackers are
/// `round(fraction × population)` ids spread evenly across `0..population`
/// (the same even-spread rule as workload partitions), and eclipse victims
/// are the first `victims` honest ids. No RNG is involved, so every engine,
/// worker count, and transport sees the identical cast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryRoles {
    spec: AdversarySpec,
    population: u64,
    attackers: u64,
    victims: u64,
}

impl AdversaryRoles {
    /// Compiles a spec against a concrete initial population size.
    pub fn new(spec: AdversarySpec, population: u64) -> Self {
        let ideal = (spec.fraction * population as f64).round() as u64;
        let mut attackers = if population == 0 {
            0
        } else {
            ideal.clamp(1, population)
        };
        let victims = spec.victims.min(population.saturating_sub(attackers));
        // Eclipse needs its victims to exist: cede attacker slots if the
        // population is too small for both.
        if spec.kind == AdversaryKind::Eclipse && population > 0 {
            attackers = attackers.min(population.saturating_sub(victims)).max(1);
        }
        AdversaryRoles {
            spec,
            population,
            attackers,
            victims,
        }
    }

    /// The spec this plan was compiled from.
    pub fn spec(&self) -> &AdversarySpec {
        &self.spec
    }

    /// The attack kind.
    pub fn kind(&self) -> AdversaryKind {
        self.spec.kind
    }

    /// The initial population size the roles were compiled against.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of attacker ids.
    pub fn attacker_count(&self) -> u64 {
        self.attackers
    }

    /// Number of eclipse victims (0 unless eclipse).
    pub fn victim_count(&self) -> u64 {
        self.victims
    }

    /// Whether `id` is an attacker. Ids at or beyond the initial population
    /// (late joiners) are always honest.
    pub fn is_attacker(&self, id: NodeId) -> bool {
        let id = id.as_u64();
        if id >= self.population {
            return false;
        }
        let (k, n) = (self.attackers as u128, self.population as u128);
        (id as u128 * k) / n != ((id as u128 + 1) * k) / n
    }

    /// Number of attacker ids strictly below `id` (the even-spread rule
    /// makes this closed-form).
    fn attackers_below(&self, id: u64) -> u64 {
        let (k, n) = (self.attackers as u128, self.population as u128);
        ((id.min(self.population) as u128 * k) / n) as u64
    }

    /// Whether `id` is an eclipse victim: one of the first
    /// [`victim_count`](Self::victim_count) honest ids.
    pub fn is_victim(&self, id: NodeId) -> bool {
        let raw = id.as_u64();
        raw < self.population
            && !self.is_attacker(id)
            && raw - self.attackers_below(raw) < self.victims
    }

    /// All attacker ids, ascending.
    pub fn attacker_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.population)
            .map(NodeId::new)
            .filter(move |&id| self.is_attacker(id))
    }

    /// All victim ids, ascending (empty unless eclipse).
    pub fn victim_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.population)
            .map(NodeId::new)
            .filter(move |&id| self.is_victim(id))
    }

    /// The colluder list advertised by attacker `id`: the other attackers,
    /// capped at `cap`, with `id` itself excluded.
    fn colluders_for(&self, id: NodeId, cap: usize) -> Vec<NodeId> {
        self.attacker_ids().filter(|&a| a != id).take(cap).collect()
    }

    /// Builds the boxed attacker node for an attacker id. The caller must
    /// have checked [`is_attacker`](Self::is_attacker); honest ids get
    /// whatever node the hosting driver normally builds.
    ///
    /// `config` is the honest protocol configuration — attackers reuse its
    /// view size so graph metrics compare like with like, and the mimicking
    /// attacks ([`AgeLiar`], [`ReplyForger`]) run a real
    /// [`PeerSamplingNode`] underneath.
    pub fn build_attacker(
        &self,
        id: NodeId,
        config: &ProtocolConfig,
        seed: u64,
    ) -> Box<dyn GossipNode + Send> {
        debug_assert!(self.is_attacker(id), "build_attacker on an honest id");
        let c = config.view_size();
        match self.spec.kind {
            AdversaryKind::Hub => {
                Box::new(HubAttacker::new(id, self.colluders_for(id, c), c, seed))
            }
            AdversaryKind::AgeLiar => Box::new(AgeLiar::new(id, config.clone(), seed)),
            AdversaryKind::ReplyForger => Box::new(ReplyForger::new(
                id,
                config.clone(),
                self.colluders_for(id, c),
                seed,
            )),
            AdversaryKind::Eclipse => Box::new(EclipseAttacker::new(
                id,
                self.colluders_for(id, c),
                self.victim_ids().collect(),
                c,
                seed,
            )),
        }
    }
}

/// Builds a forged wire buffer: `own` (if any) followed by colluders, all
/// at age 0, capped at `cap` entries. Uses the driver's recycled message
/// pool like honest senders do.
fn forged_buffer(
    arena: &mut Arena,
    own: Option<NodeId>,
    colluders: &[NodeId],
    cap: usize,
) -> Vec<NodeDescriptor> {
    let mut buffer = arena.take_buffer();
    if let Some(id) = own {
        buffer.push(NodeDescriptor::fresh(id));
    }
    buffer.extend(
        colluders
            .iter()
            .take(cap.saturating_sub(buffer.len()))
            .map(|&id| NodeDescriptor::fresh(id)),
    );
    buffer
}

/// Target memory shared by the active attackers: a bounded [`View`] of
/// honest descriptors learned from traffic, used to pick exchange targets.
#[derive(Debug, Clone)]
struct TargetBook {
    view: View,
    cap: usize,
}

impl TargetBook {
    fn new(cap: usize) -> Self {
        TargetBook {
            view: View::new(),
            cap,
        }
    }

    /// Absorbs descriptors, dropping self/colluder entries, and trims back
    /// to the cap with uniform-random eviction (no freshness bias — targets
    /// are targets).
    fn learn(
        &mut self,
        own: NodeId,
        colluders: &[NodeId],
        descriptors: &[NodeDescriptor],
        rng: &mut SmallRng,
    ) {
        for d in descriptors {
            if d.id() != own && !colluders.contains(&d.id()) {
                self.view.insert(*d);
            }
        }
        self.view.select(ViewSelection::Rand, self.cap, rng);
    }
}

/// Descriptor-flooding hub attacker.
///
/// Every outgoing request and reply is a forged buffer of age-0 attacker
/// descriptors (itself first). Under freshness-greedy view selection the
/// forged entries outcompete honest content, concentrating in-degree on the
/// attacker set. Incoming traffic is only mined for fresh honest targets.
#[derive(Debug, Clone)]
pub struct HubAttacker {
    id: NodeId,
    colluders: Vec<NodeId>,
    targets: TargetBook,
    view_size: usize,
    rng: SmallRng,
}

impl HubAttacker {
    /// Creates a hub attacker advertising itself plus `colluders`.
    pub fn new(id: NodeId, colluders: Vec<NodeId>, view_size: usize, seed: u64) -> Self {
        HubAttacker {
            id,
            colluders,
            targets: TargetBook::new(view_size),
            view_size,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl GossipNode for HubAttacker {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view(&self) -> &View {
        &self.targets.view
    }

    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        let seeds: Vec<NodeDescriptor> = seeds.collect();
        self.targets
            .learn(self.id, &self.colluders, &seeds, &mut self.rng);
    }

    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange> {
        let peer = self.targets.view.sample_filtered(&mut self.rng, eligible)?;
        Some(Exchange {
            peer,
            request: Request {
                descriptors: forged_buffer(arena, Some(self.id), &self.colluders, self.view_size),
                // Pull back the victim's view: free target reconnaissance.
                wants_reply: true,
            },
        })
    }

    fn handle_request(
        &mut self,
        arena: &mut Arena,
        from: NodeId,
        request: Request,
    ) -> Option<Reply> {
        let wants_reply = request.wants_reply;
        self.targets.learn(
            self.id,
            &self.colluders,
            &request.descriptors,
            &mut self.rng,
        );
        if from != self.id && !self.colluders.contains(&from) {
            self.targets.view.insert(NodeDescriptor::fresh(from));
        }
        arena.put_buffer(request.descriptors);
        wants_reply.then(|| Reply {
            descriptors: forged_buffer(arena, Some(self.id), &self.colluders, self.view_size),
        })
    }

    fn handle_reply(&mut self, arena: &mut Arena, _from: NodeId, reply: Reply) {
        self.targets
            .learn(self.id, &self.colluders, &reply.descriptors, &mut self.rng);
        arena.put_buffer(reply.descriptors);
    }
}

/// Age-lying attacker: an honest node whose every shipped descriptor claims
/// age 0, so its content always wins freshness comparisons and its own
/// entry never decays out of other views.
#[derive(Debug, Clone)]
pub struct AgeLiar {
    inner: PeerSamplingNode,
}

impl AgeLiar {
    /// Creates an age liar running an honest node underneath.
    pub fn new(id: NodeId, config: ProtocolConfig, seed: u64) -> Self {
        AgeLiar {
            inner: PeerSamplingNode::with_seed(id, config, seed),
        }
    }
}

/// Rewrites every descriptor in `buffer` to age 0, preserving order.
fn zero_ages(buffer: &mut [NodeDescriptor]) {
    for d in buffer.iter_mut() {
        *d = NodeDescriptor::fresh(d.id());
    }
}

impl GossipNode for AgeLiar {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn view(&self) -> &View {
        GossipNode::view(&self.inner)
    }

    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        GossipNode::init(&mut self.inner, seeds)
    }

    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange> {
        let mut exchange = self.inner.initiate_filtered(arena, eligible)?;
        zero_ages(&mut exchange.request.descriptors);
        Some(exchange)
    }

    fn handle_request(
        &mut self,
        arena: &mut Arena,
        from: NodeId,
        request: Request,
    ) -> Option<Reply> {
        let mut reply = self.inner.handle_request(arena, from, request)?;
        zero_ages(&mut reply.descriptors);
        Some(reply)
    }

    fn handle_reply(&mut self, arena: &mut Arena, from: NodeId, reply: Reply) {
        self.inner.handle_reply(arena, from, reply)
    }
}

/// Reply-forging attacker: initiates honestly (staying well-embedded in the
/// overlay) but answers every pull with a fabricated view pointing at the
/// colluder set.
#[derive(Debug, Clone)]
pub struct ReplyForger {
    inner: PeerSamplingNode,
    colluders: Vec<NodeId>,
    view_size: usize,
}

impl ReplyForger {
    /// Creates a reply forger advertising `colluders` in forged replies.
    pub fn new(id: NodeId, config: ProtocolConfig, colluders: Vec<NodeId>, seed: u64) -> Self {
        let view_size = config.view_size();
        ReplyForger {
            inner: PeerSamplingNode::with_seed(id, config, seed),
            colluders,
            view_size,
        }
    }
}

impl GossipNode for ReplyForger {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn view(&self) -> &View {
        GossipNode::view(&self.inner)
    }

    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        GossipNode::init(&mut self.inner, seeds)
    }

    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange> {
        self.inner.initiate_filtered(arena, eligible)
    }

    fn handle_request(
        &mut self,
        arena: &mut Arena,
        from: NodeId,
        request: Request,
    ) -> Option<Reply> {
        // Absorb honestly (the inner node stays embedded), then swap the
        // real reply for the forgery.
        let real = self.inner.handle_request(arena, from, request)?;
        arena.put_buffer(real.descriptors);
        Some(Reply {
            descriptors: forged_buffer(arena, Some(self.id()), &self.colluders, self.view_size),
        })
    }

    fn handle_reply(&mut self, arena: &mut Arena, from: NodeId, reply: Reply) {
        self.inner.handle_reply(arena, from, reply)
    }
}

/// Targeted eclipse attacker: pounds a configured victim set round-robin
/// with forged attacker-only buffers, trying to drive each victim's view to
/// 100 % attacker entries — while staying stealthy toward everyone else.
///
/// Stealth matters: replying forged to arbitrary honest nodes would turn
/// the eclipse into a global hub takeover (and make it trivially
/// detectable). Instead the attacker keeps a *decoy book* of honest
/// non-victim descriptors learned from incoming traffic, ages intact, and
/// answers non-victim pulls with those — plausible gossip that never
/// advertises a colluder. Victims are also filtered out of the decoy book,
/// so the colluder set never re-injects a victim into the honest overlay:
/// victims fade from honest views while their own views saturate.
#[derive(Debug, Clone)]
pub struct EclipseAttacker {
    id: NodeId,
    colluders: Vec<NodeId>,
    victims: Vec<NodeId>,
    /// Round-robin cursor over `victims`, offset per attacker so colluders
    /// spread their fire.
    cursor: usize,
    view: View,
    /// Honest non-victim descriptors served to non-victim requesters.
    decoys: View,
    view_size: usize,
    rng: SmallRng,
}

impl EclipseAttacker {
    /// Creates an eclipse attacker targeting `victims`; `seed` drives decoy
    /// eviction.
    pub fn new(
        id: NodeId,
        colluders: Vec<NodeId>,
        victims: Vec<NodeId>,
        view_size: usize,
        seed: u64,
    ) -> Self {
        let cursor = if victims.is_empty() {
            0
        } else {
            (id.as_u64() % victims.len() as u64) as usize
        };
        let view = View::from_descriptors(victims.iter().map(|&v| NodeDescriptor::fresh(v)));
        EclipseAttacker {
            id,
            colluders,
            victims,
            cursor,
            view,
            decoys: View::new(),
            view_size,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Absorbs honest non-victim descriptors into the decoy book, evicting
    /// uniformly at random beyond the cap.
    fn learn_decoys(&mut self, descriptors: &[NodeDescriptor]) {
        for d in descriptors {
            let id = d.id();
            if id != self.id && !self.colluders.contains(&id) && !self.victims.contains(&id) {
                self.decoys.insert(*d);
            }
        }
        self.decoys
            .select(ViewSelection::Rand, self.view_size, &mut self.rng);
    }

    /// A plausible reply for a non-victim: learned honest descriptors, ages
    /// intact, no colluders, no self-promotion.
    fn decoy_buffer(&self, arena: &mut Arena) -> Vec<NodeDescriptor> {
        let mut buffer = arena.take_buffer();
        buffer.extend(self.decoys.descriptors().iter().take(self.view_size));
        buffer
    }
}

impl GossipNode for EclipseAttacker {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view(&self) -> &View {
        &self.view
    }

    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        // Targets are preconfigured; bootstrap seeds only feed the decoys.
        let seeds: Vec<NodeDescriptor> = seeds.collect();
        self.learn_decoys(&seeds);
    }

    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange> {
        let len = self.victims.len();
        for step in 0..len {
            let victim = self.victims[(self.cursor + step) % len];
            if eligible(victim) {
                self.cursor = (self.cursor + step + 1) % len;
                return Some(Exchange {
                    peer: victim,
                    request: Request {
                        descriptors: forged_buffer(
                            arena,
                            Some(self.id),
                            &self.colluders,
                            self.view_size,
                        ),
                        // Pure push: saturate, don't converse.
                        wants_reply: false,
                    },
                });
            }
        }
        None
    }

    fn handle_request(
        &mut self,
        arena: &mut Arena,
        from: NodeId,
        request: Request,
    ) -> Option<Reply> {
        let wants_reply = request.wants_reply;
        self.learn_decoys(&request.descriptors);
        arena.put_buffer(request.descriptors);
        wants_reply.then(|| Reply {
            descriptors: if self.victims.contains(&from) {
                forged_buffer(arena, Some(self.id), &self.colluders, self.view_size)
            } else {
                self.decoy_buffer(arena)
            },
        })
    }

    fn handle_reply(&mut self, arena: &mut Arena, _from: NodeId, reply: Reply) {
        self.learn_decoys(&reply.descriptors);
        arena.put_buffer(reply.descriptors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyTriple;

    fn spec(kind: AdversaryKind, fraction: f64) -> AdversarySpec {
        AdversarySpec::new(kind, fraction).unwrap()
    }

    #[test]
    fn spec_validation() {
        assert_eq!(
            AdversarySpec::new(AdversaryKind::Hub, 0.0),
            Err(AdversaryError::BadFraction)
        );
        assert_eq!(
            AdversarySpec::new(AdversaryKind::Hub, 0.6),
            Err(AdversaryError::BadFraction)
        );
        assert_eq!(
            AdversarySpec::new(AdversaryKind::Eclipse, 0.1),
            Err(AdversaryError::BadVictims)
        );
        assert_eq!(
            AdversarySpec::eclipse(0.1, 0),
            Err(AdversaryError::BadVictims)
        );
        assert!(AdversarySpec::eclipse(0.1, 4).is_ok());
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [
            AdversaryKind::Hub,
            AdversaryKind::AgeLiar,
            AdversaryKind::ReplyForger,
            AdversaryKind::Eclipse,
        ] {
            assert_eq!(kind.token().parse::<AdversaryKind>().unwrap(), kind);
        }
        assert!("gremlin".parse::<AdversaryKind>().is_err());
    }

    #[test]
    fn roles_spread_attackers_evenly_and_purely() {
        let roles = AdversaryRoles::new(spec(AdversaryKind::Hub, 0.02), 200);
        assert_eq!(roles.attacker_count(), 4);
        let ids: Vec<u64> = roles.attacker_ids().map(|id| id.as_u64()).collect();
        assert_eq!(ids.len(), 4);
        // Evenly spread: one attacker per quarter of the id space.
        for (i, id) in ids.iter().enumerate() {
            assert!(*id >= i as u64 * 50 && *id < (i as u64 + 1) * 50, "{ids:?}");
        }
        // Pure per-id predicate agrees with the enumeration.
        for id in 0..200 {
            assert_eq!(
                roles.is_attacker(NodeId::new(id)),
                ids.contains(&id),
                "id {id}"
            );
        }
        // Late joiners are honest.
        assert!(!roles.is_attacker(NodeId::new(200)));
        assert!(!roles.is_attacker(NodeId::new(10_000)));
    }

    #[test]
    fn victims_are_first_honest_ids() {
        let roles = AdversaryRoles::new(AdversarySpec::eclipse(0.1, 8).unwrap(), 100);
        assert_eq!(roles.attacker_count(), 10);
        assert_eq!(roles.victim_count(), 8);
        let victims: Vec<u64> = roles.victim_ids().map(|id| id.as_u64()).collect();
        assert_eq!(victims.len(), 8);
        for &v in &victims {
            assert!(!roles.is_attacker(NodeId::new(v)));
            assert!(roles.is_victim(NodeId::new(v)));
        }
        // They are the smallest honest ids: everything below the largest
        // victim is either a victim or an attacker.
        let max = *victims.last().unwrap();
        for id in 0..max {
            let id = NodeId::new(id);
            assert!(roles.is_attacker(id) || roles.is_victim(id));
        }
        assert!(!roles.is_victim(NodeId::new(99)));
    }

    #[test]
    fn tiny_populations_keep_roles_consistent() {
        let roles = AdversaryRoles::new(AdversarySpec::eclipse(0.5, 8).unwrap(), 4);
        assert!(roles.attacker_count() >= 1);
        assert!(roles.attacker_count() + roles.victim_count() <= 4);
        let roles = AdversaryRoles::new(spec(AdversaryKind::Hub, 0.01), 3);
        assert_eq!(roles.attacker_count(), 1);
    }

    fn newscast(c: usize) -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), c).unwrap()
    }

    #[test]
    fn hub_attacker_floods_forged_fresh_entries() {
        let colluders = vec![NodeId::new(50), NodeId::new(100)];
        let mut hub = HubAttacker::new(NodeId::new(0), colluders.clone(), 8, 7);
        GossipNode::init(
            &mut hub,
            &mut [NodeDescriptor::new(NodeId::new(3), 4)].into_iter(),
        );
        let mut arena = Arena::new();
        let exchange = hub.initiate(&mut arena).expect("has a target");
        assert_eq!(exchange.peer, NodeId::new(3));
        assert!(exchange.request.wants_reply);
        let ids: Vec<NodeId> = exchange
            .request
            .descriptors
            .iter()
            .map(|d| d.id())
            .collect();
        assert_eq!(ids, vec![NodeId::new(0), NodeId::new(50), NodeId::new(100)]);
        assert!(exchange
            .request
            .descriptors
            .iter()
            .all(|d| d.hop_count() == 0));

        // A pull against the hub returns the same forgery and teaches it
        // the requester as a target.
        let reply = hub
            .handle_request(
                &mut arena,
                NodeId::new(9),
                Request {
                    descriptors: vec![NodeDescriptor::new(NodeId::new(9), 1)],
                    wants_reply: true,
                },
            )
            .expect("pull answered");
        assert!(reply.descriptors.iter().all(|d| d.hop_count() == 0));
        assert!(hub.view().contains(NodeId::new(9)));
        // Colluders never enter the target book.
        assert!(!hub.view().contains(NodeId::new(50)));
    }

    #[test]
    fn age_liar_zeroes_every_outgoing_age() {
        let mut liar = AgeLiar::new(NodeId::new(1), newscast(8), 3);
        GossipNode::init(
            &mut liar,
            &mut [
                NodeDescriptor::new(NodeId::new(2), 5),
                NodeDescriptor::new(NodeId::new(3), 9),
            ]
            .into_iter(),
        );
        let mut arena = Arena::new();
        let exchange = liar.initiate(&mut arena).expect("non-empty view");
        assert!(exchange
            .request
            .descriptors
            .iter()
            .all(|d| d.hop_count() == 0));
        let reply = liar
            .handle_request(
                &mut arena,
                NodeId::new(2),
                Request {
                    descriptors: vec![NodeDescriptor::fresh(NodeId::new(2))],
                    wants_reply: true,
                },
            )
            .expect("pushpull replies");
        assert!(reply.descriptors.iter().all(|d| d.hop_count() == 0));
    }

    #[test]
    fn reply_forger_initiates_honestly_but_forges_pulls() {
        let colluders = vec![NodeId::new(70), NodeId::new(80)];
        let mut forger = ReplyForger::new(NodeId::new(4), newscast(8), colluders.clone(), 11);
        GossipNode::init(
            &mut forger,
            &mut [NodeDescriptor::new(NodeId::new(5), 2)].into_iter(),
        );
        let mut arena = Arena::new();
        let reply = forger
            .handle_request(
                &mut arena,
                NodeId::new(5),
                Request {
                    descriptors: vec![NodeDescriptor::fresh(NodeId::new(5))],
                    wants_reply: true,
                },
            )
            .expect("pull answered");
        let ids: Vec<NodeId> = reply.descriptors.iter().map(|d| d.id()).collect();
        assert_eq!(ids, vec![NodeId::new(4), NodeId::new(70), NodeId::new(80)]);
        // The inner node still absorbed the request: it stays embedded.
        assert!(GossipNode::view(&forger).contains(NodeId::new(5)));
    }

    #[test]
    fn eclipse_attacker_round_robins_victims_and_skips_ineligible() {
        let victims = vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let mut attacker = EclipseAttacker::new(
            NodeId::new(10),
            vec![NodeId::new(20)],
            victims.clone(),
            8,
            7,
        );
        let mut arena = Arena::new();
        let first = attacker.initiate(&mut arena).expect("victims configured");
        let second = attacker.initiate(&mut arena).expect("victims configured");
        assert_ne!(first.peer, second.peer);
        assert!(victims.contains(&first.peer) && victims.contains(&second.peer));
        assert!(!first.request.wants_reply);
        assert!(first.request.descriptors.iter().all(|d| d.hop_count() == 0));

        // Dead victims are skipped.
        let third = attacker
            .initiate_filtered(&mut arena, &mut |id| id != NodeId::new(3))
            .expect("two victims still alive");
        assert_ne!(third.peer, NodeId::new(3));
        // All victims dead: no exchange.
        assert!(attacker
            .initiate_filtered(&mut arena, &mut |_| false)
            .is_none());
    }

    #[test]
    fn eclipse_attacker_forges_to_victims_and_decoys_everyone_else() {
        let victims = vec![NodeId::new(1), NodeId::new(2)];
        let colluders = vec![NodeId::new(20), NodeId::new(21)];
        let mut attacker = EclipseAttacker::new(NodeId::new(10), colluders, victims, 8, 7);

        // Traffic teaches it honest descriptors; victims and colluders are
        // never recycled as decoys.
        let request = Request {
            descriptors: vec![
                NodeDescriptor::new(NodeId::new(5), 3),
                NodeDescriptor::new(NodeId::new(1), 0), // victim
                NodeDescriptor::new(NodeId::new(20), 0), // colluder
            ],
            wants_reply: true,
        };
        // A non-victim pull gets decoys only: learned honest ids, original
        // ages, no attacker or victim ids.
        let mut arena = Arena::new();
        let reply = attacker
            .handle_request(&mut arena, NodeId::new(5), request)
            .expect("pull answered");
        assert_eq!(reply.descriptors.len(), 1);
        assert_eq!(reply.descriptors[0].id(), NodeId::new(5));
        assert_eq!(reply.descriptors[0].hop_count(), 3);

        // A victim pull gets the forged colluder buffer at age 0.
        let victim_pull = Request {
            descriptors: Vec::new(),
            wants_reply: true,
        };
        let forged = attacker
            .handle_request(&mut arena, NodeId::new(1), victim_pull)
            .expect("pull answered");
        assert!(forged.descriptors.iter().all(|d| d.hop_count() == 0));
        assert!(forged.descriptors.iter().all(|d| d.id() == NodeId::new(10)
            || d.id() == NodeId::new(20)
            || d.id() == NodeId::new(21)));
    }
}
