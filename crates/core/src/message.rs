//! Wire messages of the gossip exchange.

use crate::{NodeDescriptor, NodeId};

/// A view-exchange request sent by the active thread to its selected peer.
///
/// * In `push` and `pushpull` mode `descriptors` carries the sender's view
///   merged with its own fresh descriptor.
/// * In `pull` mode `descriptors` is empty — "empty view to trigger
///   response" in the paper's skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Request {
    /// Pushed view content (possibly empty for pull-only).
    pub descriptors: Vec<NodeDescriptor>,
    /// True if the receiver must answer with its own view (pull/pushpull).
    pub wants_reply: bool,
}

impl Request {
    /// Number of descriptors carried; a proxy for message size.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// True if no descriptors are carried (a pure pull request).
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }
}

/// The passive thread's response to a [`Request`] with `wants_reply`,
/// carrying the responder's view merged with its own fresh descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Reply {
    /// The responder's view content.
    pub descriptors: Vec<NodeDescriptor>,
}

impl Reply {
    /// Number of descriptors carried; a proxy for message size.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// True if no descriptors are carried (responder had an empty view and
    /// contributed only its own descriptor — never the case in practice, but
    /// handled).
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }
}

/// An initiated exchange: the chosen peer and the request to deliver to it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Exchange {
    /// The peer selected from the initiator's view.
    pub peer: NodeId,
    /// The request to deliver.
    pub request: Request,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_len_and_empty() {
        let pull = Request {
            descriptors: vec![],
            wants_reply: true,
        };
        assert!(pull.is_empty());
        assert_eq!(pull.len(), 0);

        let push = Request {
            descriptors: vec![NodeDescriptor::fresh(NodeId::new(1))],
            wants_reply: false,
        };
        assert!(!push.is_empty());
        assert_eq!(push.len(), 1);
    }

    #[test]
    fn reply_len_and_empty() {
        let r = Reply {
            descriptors: vec![NodeDescriptor::fresh(NodeId::new(2)); 3],
        };
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(Reply {
            descriptors: vec![]
        }
        .is_empty());
    }
}
