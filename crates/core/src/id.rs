//! Node identifiers.

use core::fmt;

/// Opaque identifier of a node, standing in for its network address.
///
/// The paper's system model gives every node "an address that is needed for
/// sending a message to that node"; in this library the address is an opaque
/// 64-bit identifier, which drivers map to whatever transport they use (the
/// simulators use it directly as an index).
///
/// # Examples
///
/// ```
/// use pss_core::NodeId;
///
/// let id = NodeId::new(7);
/// assert_eq!(id.as_u64(), 7);
/// assert_eq!(id.to_string(), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The raw value as a `usize` index (for simulator node tables).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the value does not fit in `usize` (only
    /// possible on 32-bit targets with huge identifiers).
    pub fn as_index(self) -> usize {
        debug_assert!(self.0 <= usize::MAX as u64);
        self.0 as usize
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let id = NodeId::new(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.as_index(), 42);
    }

    #[test]
    fn conversions() {
        let id: NodeId = 9u64.into();
        let raw: u64 = id.into();
        assert_eq!(raw, 9);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(3), NodeId::new(3));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(NodeId::new(123).to_string(), "n123");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
