//! The three-dimensional protocol design space of the paper.

use core::fmt;
use std::str::FromStr;

/// Freshness dimension: what the descriptor age field measures.
///
/// The paper's generic skeleton tracks freshness as a **hop count**
/// incremented by every receiver, while its Newscast instantiation uses
/// **timestamps**: a descriptor is stamped when its owner creates it and
/// its age is simply the elapsed time on the (virtual, engine-driven)
/// clock — forwarding a descriptor does not make it look older.
///
/// The difference is invisible on a healthy overlay but decisive under
/// degraded failure physics: hop-count age inflates every in-group entry
/// during a network partition (entries keep circulating, gaining a hop per
/// transfer), so the eviction horizon rises with it while unreachable
/// cross-group entries age at the same clock rate — the marooned halves
/// collapse onto self-reinforcing cliques and the overlay splits for good.
/// Timestamp age keeps circulating entries young, the eviction horizon
/// stays low and *stale cross-group descriptors survive at the view tail*
/// long enough for a heal to re-merge the overlay. The workload
/// conformance suite pins both outcomes on the identical schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Freshness {
    /// Hop-count age: incremented once per cycle in the stored view *and*
    /// once on every transfer (the paper's generic `increaseHopCount`).
    #[default]
    HopCount,
    /// Timestamp age: advances once per cycle of the engine clock only;
    /// transfers carry the age through unchanged (Newscast semantics).
    Timestamp,
}

impl Freshness {
    /// Age added to every received descriptor before merging: 1 hop for
    /// [`Freshness::HopCount`], 0 for [`Freshness::Timestamp`] (the age is
    /// a clock reading, not a path length).
    pub const fn transfer_age(self) -> u32 {
        match self {
            Freshness::HopCount => 1,
            Freshness::Timestamp => 0,
        }
    }

    /// Both variants, hop count first.
    pub const fn both() -> [Freshness; 2] {
        [Freshness::HopCount, Freshness::Timestamp]
    }
}

impl fmt::Display for Freshness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Freshness::HopCount => "hop",
            Freshness::Timestamp => "timestamp",
        })
    }
}

impl FromStr for Freshness {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "hop" | "hops" | "hopcount" | "hop-count" => Ok(Freshness::HopCount),
            "timestamp" | "ts" | "time" => Ok(Freshness::Timestamp),
            other => Err(ParsePolicyError::new(other)),
        }
    }
}

/// Peer selection policy: which view entry to exchange views with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PeerSelection {
    /// Uniform randomly select an available node from the view.
    Rand,
    /// Select the first node from the view (lowest hop count, freshest).
    Head,
    /// Select the last node from the view (highest hop count, stalest).
    Tail,
}

/// View selection policy: which `c` entries survive truncation after a merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ViewSelection {
    /// Uniform randomly select `c` elements without replacement.
    Rand,
    /// Keep the first `c` elements (freshest information).
    Head,
    /// Keep the last `c` elements (stalest information).
    Tail,
}

/// View propagation policy: the symmetry of an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ViewPropagation {
    /// The initiator sends its view to the selected peer.
    Push,
    /// The initiator requests the view from the selected peer.
    Pull,
    /// The initiator and selected peer exchange their respective views.
    PushPull,
}

impl ViewPropagation {
    /// True if the initiator sends view content (push or pushpull).
    pub const fn is_push(self) -> bool {
        matches!(self, ViewPropagation::Push | ViewPropagation::PushPull)
    }

    /// True if the initiator expects view content back (pull or pushpull).
    pub const fn is_pull(self) -> bool {
        matches!(self, ViewPropagation::Pull | ViewPropagation::PushPull)
    }
}

/// A point in the paper's protocol design space: `(ps, vs, vp)`.
///
/// Displayed and parsed in the paper's notation, e.g.
/// `(rand,head,pushpull)`.
///
/// # Examples
///
/// ```
/// use pss_core::PolicyTriple;
///
/// let newscast: PolicyTriple = "(rand,head,pushpull)".parse()?;
/// assert_eq!(newscast, PolicyTriple::newscast());
/// assert_eq!(newscast.to_string(), "(rand,head,pushpull)");
/// # Ok::<(), pss_core::ParsePolicyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PolicyTriple {
    /// Peer selection dimension.
    pub peer_selection: PeerSelection,
    /// View selection dimension.
    pub view_selection: ViewSelection,
    /// View propagation dimension.
    pub propagation: ViewPropagation,
}

impl PolicyTriple {
    /// Creates a policy triple.
    pub const fn new(
        peer_selection: PeerSelection,
        view_selection: ViewSelection,
        propagation: ViewPropagation,
    ) -> Self {
        PolicyTriple {
            peer_selection,
            view_selection,
            propagation,
        }
    }

    /// The peer-sampling component of Lpbcast: `(rand,rand,push)`.
    pub const fn lpbcast() -> Self {
        PolicyTriple::new(
            PeerSelection::Rand,
            ViewSelection::Rand,
            ViewPropagation::Push,
        )
    }

    /// Newscast: `(rand,head,pushpull)`.
    pub const fn newscast() -> Self {
        PolicyTriple::new(
            PeerSelection::Rand,
            ViewSelection::Head,
            ViewPropagation::PushPull,
        )
    }

    /// The eight protocols the paper evaluates in depth: peer selection
    /// `rand`/`tail` × view selection `head`/`rand` × propagation
    /// `push`/`pushpull` (the remaining combinations were discarded after
    /// preliminary experiments — see [`PolicyTriple::is_degenerate`]).
    ///
    /// Order matches the paper's tables: push protocols first.
    pub fn paper_eight() -> [PolicyTriple; 8] {
        use PeerSelection as Ps;
        use ViewPropagation as Vp;
        use ViewSelection as Vs;
        [
            PolicyTriple::new(Ps::Rand, Vs::Head, Vp::Push),
            PolicyTriple::new(Ps::Rand, Vs::Rand, Vp::Push),
            PolicyTriple::new(Ps::Tail, Vs::Head, Vp::Push),
            PolicyTriple::new(Ps::Tail, Vs::Rand, Vp::Push),
            PolicyTriple::new(Ps::Rand, Vs::Head, Vp::PushPull),
            PolicyTriple::new(Ps::Rand, Vs::Rand, Vp::PushPull),
            PolicyTriple::new(Ps::Tail, Vs::Head, Vp::PushPull),
            PolicyTriple::new(Ps::Tail, Vs::Rand, Vp::PushPull),
        ]
    }

    /// All 27 combinations, in lexicographic (ps, vs, vp) order.
    pub fn all() -> Vec<PolicyTriple> {
        let ps = [
            PeerSelection::Rand,
            PeerSelection::Head,
            PeerSelection::Tail,
        ];
        let vs = [
            ViewSelection::Rand,
            ViewSelection::Head,
            ViewSelection::Tail,
        ];
        let vp = [
            ViewPropagation::Push,
            ViewPropagation::Pull,
            ViewPropagation::PushPull,
        ];
        let mut out = Vec::with_capacity(27);
        for &p in &ps {
            for &v in &vs {
                for &g in &vp {
                    out.push(PolicyTriple::new(p, v, g));
                }
            }
        }
        out
    }

    /// True for the combinations the paper excluded as "not meaningful
    /// overlay management protocols" (Section 4.3): `(head,*,*)` causes
    /// severe clustering, `(*,tail,*)` cannot absorb joining nodes, and
    /// `(*,*,pull)` converges to a star topology.
    pub const fn is_degenerate(self) -> bool {
        matches!(self.peer_selection, PeerSelection::Head)
            || matches!(self.view_selection, ViewSelection::Tail)
            || matches!(self.propagation, ViewPropagation::Pull)
    }
}

impl fmt::Display for PeerSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PeerSelection::Rand => "rand",
            PeerSelection::Head => "head",
            PeerSelection::Tail => "tail",
        })
    }
}

impl fmt::Display for ViewSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViewSelection::Rand => "rand",
            ViewSelection::Head => "head",
            ViewSelection::Tail => "tail",
        })
    }
}

impl fmt::Display for ViewPropagation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViewPropagation::Push => "push",
            ViewPropagation::Pull => "pull",
            ViewPropagation::PushPull => "pushpull",
        })
    }
}

impl fmt::Display for PolicyTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{})",
            self.peer_selection, self.view_selection, self.propagation
        )
    }
}

/// Error returned when parsing a policy or policy triple fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl ParsePolicyError {
    fn new(input: &str) -> Self {
        ParsePolicyError {
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid policy `{}`; expected e.g. `(rand,head,pushpull)`",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PeerSelection {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "rand" => Ok(PeerSelection::Rand),
            "head" => Ok(PeerSelection::Head),
            "tail" => Ok(PeerSelection::Tail),
            other => Err(ParsePolicyError::new(other)),
        }
    }
}

impl FromStr for ViewSelection {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "rand" => Ok(ViewSelection::Rand),
            "head" => Ok(ViewSelection::Head),
            "tail" => Ok(ViewSelection::Tail),
            other => Err(ParsePolicyError::new(other)),
        }
    }
}

impl FromStr for ViewPropagation {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "push" => Ok(ViewPropagation::Push),
            "pull" => Ok(ViewPropagation::Pull),
            "pushpull" => Ok(ViewPropagation::PushPull),
            other => Err(ParsePolicyError::new(other)),
        }
    }
}

impl FromStr for PolicyTriple {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let inner = trimmed
            .strip_prefix('(')
            .and_then(|rest| rest.strip_suffix(')'))
            .unwrap_or(trimmed);
        let mut parts = inner.split(',');
        let (Some(ps), Some(vs), Some(vp), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(ParsePolicyError::new(s));
        };
        Ok(PolicyTriple::new(ps.parse()?, vs.parse()?, vp.parse()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_predicates() {
        assert!(ViewPropagation::Push.is_push());
        assert!(!ViewPropagation::Push.is_pull());
        assert!(!ViewPropagation::Pull.is_push());
        assert!(ViewPropagation::Pull.is_pull());
        assert!(ViewPropagation::PushPull.is_push());
        assert!(ViewPropagation::PushPull.is_pull());
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(PolicyTriple::lpbcast().to_string(), "(rand,rand,push)");
        assert_eq!(PolicyTriple::newscast().to_string(), "(rand,head,pushpull)");
    }

    #[test]
    fn paper_eight_are_distinct_and_non_degenerate() {
        let eight = PolicyTriple::paper_eight();
        for (i, a) in eight.iter().enumerate() {
            assert!(!a.is_degenerate(), "{a} should not be degenerate");
            for b in &eight[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn all_has_27_unique_entries() {
        let all = PolicyTriple::all();
        assert_eq!(all.len(), 27);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // 8 survivors + 19 degenerate combinations.
        let degenerate = all.iter().filter(|p| p.is_degenerate()).count();
        assert_eq!(degenerate, 19);
    }

    #[test]
    fn degenerate_rules() {
        assert!("(head,head,pushpull)"
            .parse::<PolicyTriple>()
            .unwrap()
            .is_degenerate());
        assert!("(rand,tail,push)"
            .parse::<PolicyTriple>()
            .unwrap()
            .is_degenerate());
        assert!("(rand,head,pull)"
            .parse::<PolicyTriple>()
            .unwrap()
            .is_degenerate());
        assert!(!PolicyTriple::newscast().is_degenerate());
    }

    #[test]
    fn parse_round_trips() {
        for p in PolicyTriple::all() {
            let text = p.to_string();
            let back: PolicyTriple = text.parse().unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn parse_accepts_unparenthesized_and_whitespace() {
        let p: PolicyTriple = "tail, rand, push".parse().unwrap();
        assert_eq!(
            p,
            PolicyTriple::new(
                PeerSelection::Tail,
                ViewSelection::Rand,
                ViewPropagation::Push
            )
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("(rand,head)".parse::<PolicyTriple>().is_err());
        assert!("(rand,head,pushpull,extra)"
            .parse::<PolicyTriple>()
            .is_err());
        assert!("(rnd,head,push)".parse::<PolicyTriple>().is_err());
        assert!("".parse::<PolicyTriple>().is_err());
        let err = "(x,y,z)".parse::<PolicyTriple>().unwrap_err();
        assert!(err.to_string().contains("invalid policy"));
    }

    #[test]
    fn individual_policy_parsing() {
        assert_eq!(
            "rand".parse::<PeerSelection>().unwrap(),
            PeerSelection::Rand
        );
        assert_eq!(
            " head ".parse::<ViewSelection>().unwrap(),
            ViewSelection::Head
        );
        assert_eq!(
            "pushpull".parse::<ViewPropagation>().unwrap(),
            ViewPropagation::PushPull
        );
        assert!("HEAD".parse::<PeerSelection>().is_err());
    }
}
