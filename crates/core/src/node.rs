//! The protocol state machine: the paper's Figure 1 skeleton.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::staging::Arena;
use crate::{
    Exchange, NodeDescriptor, NodeId, PeerSelection, ProtocolConfig, Reply, Request, View,
};

/// A gossip membership protocol participant, as seen by a driver.
///
/// Drivers (cycle simulator, event simulator, or a real transport) move
/// messages between nodes:
///
/// 1. periodically call [`GossipNode::initiate`] on a node; deliver the
///    produced [`Exchange::request`] to [`Exchange::peer`],
/// 2. on delivery call [`GossipNode::handle_request`] on the peer; if it
///    returns a reply, deliver it back,
/// 3. on delivery of the reply call [`GossipNode::handle_reply`] on the
///    initiator.
///
/// If the peer is unreachable the driver simply drops the messages: the
/// protocol has no failure detector and heals only through view selection,
/// exactly as in the paper.
///
/// Every protocol call borrows the driver's staging [`Arena`]: scratch
/// space and the recycled message-buffer pool are owned by whoever drives
/// the node (a simulation shard, a network runtime), not hidden in
/// thread-local state. Arena reuse never affects protocol output — buffer
/// contents are cleared before every use — so any arena works with any
/// node; passing the same one per shard keeps the hot path allocation-free.
pub trait GossipNode {
    /// This node's address.
    fn id(&self) -> NodeId;

    /// Read access to the current view (for observers building the overlay
    /// graph).
    fn view(&self) -> &View;

    /// (Re)initializes the view from bootstrap descriptors, the `init()`
    /// method of the service API.
    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>);

    /// Runs one step of the active thread: selects a peer and produces the
    /// request to send, or `None` if the view is empty.
    ///
    /// Equivalent to [`GossipNode::initiate_filtered`] with every peer
    /// eligible.
    fn initiate(&mut self, arena: &mut Arena) -> Option<Exchange> {
        self.initiate_filtered(arena, &mut |_| true)
    }

    /// Runs one step of the active thread, selecting a peer only among view
    /// entries for which `eligible` returns true.
    ///
    /// The paper specifies that `selectPeer()` "returns the address of a
    /// **live** node as found in the caller's current view": cycle drivers
    /// pass a liveness predicate here, modeling the timeout-and-retry a real
    /// deployment performs within one period. Returns `None` when no
    /// eligible entry exists. Side effects that happen once per cycle (view
    /// aging) still apply even when `None` is returned.
    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange>;

    /// Runs the passive thread on an incoming request, returning the reply
    /// to send back if the request wants one.
    fn handle_request(
        &mut self,
        arena: &mut Arena,
        from: NodeId,
        request: Request,
    ) -> Option<Reply>;

    /// Completes an exchange on the active side with the received reply.
    fn handle_reply(&mut self, arena: &mut Arena, from: NodeId, reply: Reply);
}

/// Boxed nodes forward to the inner implementation, so heterogeneous
/// populations (`Box<dyn GossipNode + Send>`) and monomorphized ones share
/// every driver.
impl<T: GossipNode + ?Sized> GossipNode for Box<T> {
    fn id(&self) -> NodeId {
        (**self).id()
    }

    fn view(&self) -> &View {
        (**self).view()
    }

    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        (**self).init(seeds)
    }

    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange> {
        (**self).initiate_filtered(arena, eligible)
    }

    fn handle_request(
        &mut self,
        arena: &mut Arena,
        from: NodeId,
        request: Request,
    ) -> Option<Reply> {
        (**self).handle_request(arena, from, request)
    }

    fn handle_reply(&mut self, arena: &mut Arena, from: NodeId, reply: Reply) {
        (**self).handle_reply(arena, from, reply)
    }
}

/// The generic gossip-based peer sampling node of the paper (Figure 1),
/// parameterized by a [`ProtocolConfig`].
///
/// Hop-count bookkeeping follows the skeleton exactly:
///
/// * the sender merges its own fresh descriptor `(self, 0)` into outgoing
///   content,
/// * every receiver increments the hop counts of all received descriptors
///   before merging,
/// * `merge` keeps the lowest hop count per node and never stores the
///   node's own descriptor,
/// * `selectView` truncates to `c` entries by the view selection policy.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct PeerSamplingNode {
    id: NodeId,
    config: ProtocolConfig,
    view: View,
    rng: SmallRng,
}

impl PeerSamplingNode {
    /// Creates a node with a deterministic RNG seed. All stochastic choices
    /// (rand peer/view selection, `getPeer` sampling) derive from this seed.
    pub fn with_seed(id: NodeId, config: ProtocolConfig, seed: u64) -> Self {
        PeerSamplingNode {
            id,
            config,
            view: View::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Convenience [`GossipNode::init`] accepting any descriptor collection.
    pub fn init(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) {
        GossipNode::init(self, &mut seeds.into_iter());
    }

    /// The node's static configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Selects the exchange partner among eligible view entries per the
    /// peer selection policy. `None` if no eligible entry exists.
    fn select_exchange_peer(&mut self, eligible: &mut dyn FnMut(NodeId) -> bool) -> Option<NodeId> {
        match self.config.policy().peer_selection {
            PeerSelection::Head => self.view.ids().find(|&id| eligible(id)),
            PeerSelection::Tail => {
                let mut last = None;
                for id in self.view.ids() {
                    if eligible(id) {
                        last = Some(id);
                    }
                }
                last
            }
            PeerSelection::Rand => self.view.sample_filtered(&mut self.rng, eligible),
        }
    }

    /// The content pushed to a peer: `merge(view, {(self, 0)})`.
    ///
    /// Built directly into a recycled message buffer (which the request or
    /// reply then owns): the view cannot contain the node's own descriptor,
    /// so the merge reduces to splicing `(self, 0)` in after any existing
    /// hop-0 entries (the view's entries keep tie precedence, exactly as in
    /// `merge(view, {myDescriptor})`).
    fn outgoing_descriptors(&self, arena: &mut Arena) -> Vec<NodeDescriptor> {
        let entries = self.view.descriptors();
        let at = entries.partition_point(|d| d.hop_count() == 0);
        let mut buffer = arena.pool_take();
        buffer.reserve(entries.len() + 1);
        buffer.extend_from_slice(&entries[..at]);
        buffer.push(NodeDescriptor::fresh(self.id));
        buffer.extend_from_slice(&entries[at..]);
        buffer
    }

    /// Runs the receive side of an exchange on `descriptors`:
    /// `view ← selectView(merge(increaseHopCount(view_p), view))`, using the
    /// arena's staging buffers (no steady-state allocation).
    ///
    /// Under [`crate::Freshness::Timestamp`] the `increaseHopCount` step
    /// degenerates to the identity: ages are clock readings stamped by the
    /// descriptor's owner, and transit does not advance the clock.
    fn absorb(&mut self, arena: &mut Arena, descriptors: Vec<NodeDescriptor>) {
        let policy = self.config.policy().view_selection;
        let c = self.config.view_size();
        let transfer = self.config.freshness().transfer_age();
        // Fast path: protocol messages carry well-formed view content
        // (hop-sorted, one descriptor per node), absorbed straight off
        // the wire buffer. Malformed content (possible only through
        // hand-crafted requests) is rejected untouched and goes through
        // the general dedup path.
        arena.rx_buf.clear();
        arena
            .rx_buf
            .extend(descriptors.iter().map(|d| d.aged_by(transfer)));
        let absorbed = self.view.merge_select_from_slice(
            &arena.rx_buf,
            Some(self.id),
            policy,
            c,
            &mut self.rng,
            &mut arena.scratch,
        );
        if !absorbed {
            arena
                .rx_view
                .assign_aged(descriptors.iter().copied(), transfer, &mut arena.scratch);
            self.view.merge_select_from(
                &arena.rx_view,
                Some(self.id),
                policy,
                c,
                &mut self.rng,
                &mut arena.scratch,
            );
        }
        // Recycle the spent message buffer for future outgoing messages.
        arena.pool_put(descriptors);
        debug_assert!(self.view.invariants_hold());
    }

    /// Uniform random peer from the view — the `getPeer()` implementation
    /// (see also the [`crate::PeerSampler`] trait).
    pub fn sample_peer(&mut self) -> Option<NodeId> {
        self.view.sample(&mut self.rng).map(|d| d.id())
    }

    /// Exposes the RNG for drivers needing auxiliary deterministic choices.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

impl GossipNode for PeerSamplingNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view(&self) -> &View {
        &self.view
    }

    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        self.view = View::from_descriptors(seeds.filter(|d| d.id() != self.id));
        let vs = self.config.policy().view_selection;
        let c = self.config.view_size();
        self.view.select(vs, c, &mut self.rng);
    }

    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange> {
        // Age the stored view once per cycle. The paper's pseudocode only
        // shows hop counts incremented on receipt, but its published
        // dynamics (e.g. exponential dead-link removal under head view
        // selection, Figure 7) require stored descriptors to age as well —
        // taken literally, never-aging entries freeze the topology under
        // head selection. The authors' follow-up formalization (TOCS 2007)
        // makes this explicit as `view.increaseAge()` once per cycle; we do
        // the same here, at the start of the active thread.
        self.view.increase_hop_counts();
        let peer = self.select_exchange_peer(eligible)?;
        let propagation = self.config.policy().propagation;
        let descriptors = if propagation.is_push() {
            self.outgoing_descriptors(arena)
        } else {
            Vec::new() // "empty view to trigger response"
        };
        Some(Exchange {
            peer,
            request: Request {
                descriptors,
                wants_reply: propagation.is_pull(),
            },
        })
    }

    fn handle_request(
        &mut self,
        arena: &mut Arena,
        _from: NodeId,
        request: Request,
    ) -> Option<Reply> {
        // Build the reply from the *pre-merge* view, as in the skeleton.
        let reply = request.wants_reply.then(|| Reply {
            descriptors: self.outgoing_descriptors(arena),
        });
        self.absorb(arena, request.descriptors);
        reply
    }

    fn handle_reply(&mut self, arena: &mut Arena, _from: NodeId, reply: Reply) {
        self.absorb(arena, reply.descriptors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PolicyTriple, ViewPropagation, ViewSelection};

    fn config(policy: &str, c: usize) -> ProtocolConfig {
        ProtocolConfig::new(policy.parse().unwrap(), c).unwrap()
    }

    fn node(id: u64, policy: &str, c: usize) -> PeerSamplingNode {
        PeerSamplingNode::with_seed(NodeId::new(id), config(policy, c), id.wrapping_mul(7) + 1)
    }

    fn seeded(id: u64, policy: &str, c: usize, seeds: &[(u64, u32)]) -> PeerSamplingNode {
        let mut n = node(id, policy, c);
        n.init(
            seeds
                .iter()
                .map(|&(i, h)| NodeDescriptor::new(NodeId::new(i), h)),
        );
        n
    }

    #[test]
    fn init_drops_self_and_truncates() {
        let n = seeded(
            0,
            "(rand,head,pushpull)",
            2,
            &[(0, 0), (1, 1), (2, 2), (3, 3)],
        );
        assert!(!n.view().contains(NodeId::new(0)));
        assert_eq!(n.view().len(), 2);
        // Head selection keeps the freshest two.
        assert!(n.view().contains(NodeId::new(1)));
        assert!(n.view().contains(NodeId::new(2)));
    }

    #[test]
    fn initiate_with_empty_view_is_none() {
        let mut arena = Arena::new();
        let mut n = node(0, "(rand,head,pushpull)", 30);
        assert!(n.initiate(&mut arena).is_none());
    }

    #[test]
    fn push_request_carries_view_plus_self() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,head,push)", 30, &[(1, 4), (2, 2)]);
        let ex = n.initiate(&mut arena).unwrap();
        assert!(!ex.request.wants_reply);
        assert_eq!(ex.request.len(), 3);
        let own = ex
            .request
            .descriptors
            .iter()
            .find(|d| d.id() == NodeId::new(0))
            .expect("own descriptor included");
        assert_eq!(own.hop_count(), 0);
    }

    #[test]
    fn pull_request_is_empty_and_wants_reply() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,head,pull)", 30, &[(1, 4)]);
        let ex = n.initiate(&mut arena).unwrap();
        assert!(ex.request.is_empty());
        assert!(ex.request.wants_reply);
    }

    #[test]
    fn pushpull_request_carries_view_and_wants_reply() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,head,pushpull)", 30, &[(1, 4)]);
        let ex = n.initiate(&mut arena).unwrap();
        assert_eq!(ex.request.len(), 2);
        assert!(ex.request.wants_reply);
    }

    #[test]
    fn head_peer_selection_picks_freshest() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(head,head,pushpull)", 30, &[(1, 4), (2, 1), (3, 9)]);
        let ex = n.initiate(&mut arena).unwrap();
        assert_eq!(ex.peer, NodeId::new(2));
    }

    #[test]
    fn tail_peer_selection_picks_stalest() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(tail,head,pushpull)", 30, &[(1, 4), (2, 1), (3, 9)]);
        let ex = n.initiate(&mut arena).unwrap();
        assert_eq!(ex.peer, NodeId::new(3));
    }

    #[test]
    fn rand_peer_selection_consults_filter_once_per_entry() {
        // `eligible` is a FnMut; stateful filters rely on one call per view
        // entry per initiation.
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,head,pushpull)", 30, &[(1, 1), (2, 2), (3, 3)]);
        let mut calls = 0usize;
        let ex = n.initiate_filtered(&mut arena, &mut |_| {
            calls += 1;
            true
        });
        assert!(ex.is_some());
        assert_eq!(calls, 3, "filter must be consulted exactly once per entry");
    }

    #[test]
    fn rand_peer_selection_stays_in_view() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,head,pushpull)", 30, &[(1, 1), (2, 2), (3, 3)]);
        for _ in 0..50 {
            let ex = n.initiate(&mut arena).unwrap();
            assert!(n.view().contains(ex.peer));
        }
    }

    #[test]
    fn handle_request_increments_hop_counts() {
        let mut arena = Arena::new();
        let mut receiver = seeded(1, "(rand,head,pushpull)", 30, &[(2, 5)]);
        let request = Request {
            descriptors: vec![NodeDescriptor::fresh(NodeId::new(0))],
            wants_reply: false,
        };
        receiver.handle_request(&mut arena, NodeId::new(0), request);
        // Received at hop 0, stored at hop 1.
        assert_eq!(receiver.view().hop_count_of(NodeId::new(0)), Some(1));
    }

    #[test]
    fn handle_request_reply_is_pre_merge_view() {
        let mut arena = Arena::new();
        let mut receiver = seeded(1, "(rand,head,pushpull)", 30, &[(2, 5)]);
        let request = Request {
            descriptors: vec![NodeDescriptor::fresh(NodeId::new(0))],
            wants_reply: true,
        };
        let reply = receiver
            .handle_request(&mut arena, NodeId::new(0), request)
            .unwrap();
        // Reply contains the old view (n2) plus self (n1), but NOT the just
        // received n0.
        let ids: Vec<NodeId> = reply.descriptors.iter().map(|d| d.id()).collect();
        assert!(ids.contains(&NodeId::new(1)));
        assert!(ids.contains(&NodeId::new(2)));
        assert!(!ids.contains(&NodeId::new(0)));
    }

    #[test]
    fn push_request_gets_no_reply() {
        let mut arena = Arena::new();
        let mut receiver = seeded(1, "(rand,head,push)", 30, &[(2, 5)]);
        let request = Request {
            descriptors: vec![NodeDescriptor::fresh(NodeId::new(0))],
            wants_reply: false,
        };
        assert!(receiver
            .handle_request(&mut arena, NodeId::new(0), request)
            .is_none());
    }

    #[test]
    fn handle_reply_merges_and_ages() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,head,pushpull)", 30, &[(1, 3)]);
        n.handle_reply(
            &mut arena,
            NodeId::new(1),
            Reply {
                descriptors: vec![
                    NodeDescriptor::fresh(NodeId::new(1)),
                    NodeDescriptor::new(NodeId::new(2), 7),
                ],
            },
        );
        // Fresh n1@0 arrives as n1@1, beating the stored n1@3.
        assert_eq!(n.view().hop_count_of(NodeId::new(1)), Some(1));
        assert_eq!(n.view().hop_count_of(NodeId::new(2)), Some(8));
    }

    #[test]
    fn own_descriptor_never_enters_own_view() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,head,pushpull)", 30, &[(1, 3)]);
        n.handle_reply(
            &mut arena,
            NodeId::new(1),
            Reply {
                descriptors: vec![NodeDescriptor::new(NodeId::new(0), 2)],
            },
        );
        assert!(!n.view().contains(NodeId::new(0)));
    }

    #[test]
    fn view_never_exceeds_capacity() {
        let mut arena = Arena::new();
        let mut n = seeded(0, "(rand,rand,pushpull)", 3, &[(1, 1), (2, 2), (3, 3)]);
        let reply = Reply {
            descriptors: (10..30)
                .map(|i| NodeDescriptor::new(NodeId::new(i), i as u32))
                .collect(),
        };
        n.handle_reply(&mut arena, NodeId::new(1), reply);
        assert_eq!(n.view().len(), 3);
        assert!(n.view().invariants_hold());
    }

    #[test]
    fn full_pushpull_exchange_symmetric_learning() {
        let mut arena = Arena::new();
        let cfg = config("(rand,head,pushpull)", 30);
        let mut a = PeerSamplingNode::with_seed(NodeId::new(0), cfg.clone(), 1);
        let mut b = PeerSamplingNode::with_seed(NodeId::new(1), cfg, 2);
        a.init([NodeDescriptor::fresh(NodeId::new(1))]);
        b.init([NodeDescriptor::fresh(NodeId::new(2))]);

        let ex = a.initiate(&mut arena).unwrap();
        assert_eq!(ex.peer, NodeId::new(1));
        let reply = b
            .handle_request(&mut arena, NodeId::new(0), ex.request)
            .unwrap();
        a.handle_reply(&mut arena, NodeId::new(1), reply);

        // b learned about a; a learned about node 2 via b.
        assert!(b.view().contains(NodeId::new(0)));
        assert!(a.view().contains(NodeId::new(2)));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let make = || {
            let mut arena = Arena::new();
            let mut n = seeded(
                0,
                "(rand,rand,pushpull)",
                5,
                &[(1, 1), (2, 2), (3, 3), (4, 4)],
            );
            let mut trace = Vec::new();
            for _ in 0..10 {
                let ex = n.initiate(&mut arena).unwrap();
                trace.push(ex.peer);
                n.handle_reply(
                    &mut arena,
                    ex.peer,
                    Reply {
                        descriptors: vec![NodeDescriptor::fresh(ex.peer)],
                    },
                );
            }
            trace
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn any_arena_yields_identical_protocol_output() {
        // The arena is pure scratch: a fresh arena per call and one shared
        // arena must produce bit-identical exchanges and views.
        let run = |fresh_arena_per_call: bool| {
            let mut shared = Arena::new();
            let mut n = seeded(
                0,
                "(rand,rand,pushpull)",
                5,
                &[(1, 1), (2, 2), (3, 3), (4, 4)],
            );
            let mut trace = Vec::new();
            for i in 0..12 {
                let mut fresh = Arena::new();
                let arena = if fresh_arena_per_call {
                    &mut fresh
                } else {
                    &mut shared
                };
                let ex = n.initiate(arena).unwrap();
                trace.push((ex.peer, ex.request.descriptors.clone()));
                n.handle_reply(
                    arena,
                    ex.peer,
                    Reply {
                        descriptors: vec![NodeDescriptor::new(ex.peer, i as u32 % 3)],
                    },
                );
            }
            (trace, n.view().descriptors().to_vec())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn sample_peer_returns_view_member() {
        let mut n = seeded(0, "(rand,head,pushpull)", 30, &[(1, 1), (2, 2)]);
        for _ in 0..20 {
            let p = n.sample_peer().unwrap();
            assert!(n.view().contains(p));
        }
        let mut empty = node(5, "(rand,head,pushpull)", 30);
        assert!(empty.sample_peer().is_none());
    }

    /// The marooning fix is load-bearing: under [`Freshness::Timestamp`]
    /// the transit step (`increaseHopCount` on receive) is the identity, so
    /// a descriptor's age is its owner's clock reading no matter how many
    /// hops it travelled. Under [`Freshness::HopCount`] every receive adds
    /// one — circulating entries inflate, which is what evicts long-haul
    /// (cross-partition) entries early and maroons healed overlays.
    #[test]
    fn timestamp_transfer_does_not_add_age() {
        use crate::Freshness;
        let mut arena = Arena::new();
        for (freshness, expected) in [(Freshness::HopCount, 5), (Freshness::Timestamp, 4)] {
            let config = ProtocolConfig::new("(rand,head,pushpull)".parse().unwrap(), 8)
                .unwrap()
                .with_freshness(freshness);
            let mut n = PeerSamplingNode::with_seed(NodeId::new(0), config, 1);
            n.init([NodeDescriptor::new(NodeId::new(1), 0)]);
            let request = Request {
                descriptors: vec![NodeDescriptor::new(NodeId::new(9), 4)],
                wants_reply: false,
            };
            n.handle_request(&mut arena, NodeId::new(9), request);
            let received = n
                .view()
                .iter()
                .find(|d| d.id() == NodeId::new(9))
                .expect("absorbed");
            assert_eq!(
                received.hop_count(),
                expected,
                "{freshness:?}: transfer age must be {}",
                expected - 4
            );
        }
    }

    #[test]
    fn config_accessor() {
        let n = node(0, "(rand,head,push)", 7);
        assert_eq!(n.config().view_size(), 7);
        assert_eq!(n.config().policy().propagation, ViewPropagation::Push);
        assert_eq!(n.config().policy().view_selection, ViewSelection::Head);
        assert_eq!(
            n.config().policy(),
            PolicyTriple::new(
                crate::PeerSelection::Rand,
                ViewSelection::Head,
                ViewPropagation::Push,
            )
        );
    }
}
