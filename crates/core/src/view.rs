//! Partial views: hop-count-ordered sets of node descriptors.

use core::fmt;

use rand::seq::index::sample;
use rand::Rng;

use crate::{NodeDescriptor, NodeId, ViewSelection};

/// A partial view: "a list with at most one descriptor per node and ordered
/// according to increasing hop count" (paper, Section 3).
///
/// Invariants maintained by every operation:
///
/// 1. at most one descriptor per node,
/// 2. entries sorted by increasing hop count,
/// 3. ties in hop count keep their insertion order (stable).
///
/// The tie rule matters more than it looks. The paper notes the first/last
/// `k` elements are "not always uniquely defined" under ties — incidental
/// list order, varying per node. A *globally consistent* tie-break (e.g. by
/// node id) instead injects systematic selection pressure: under `head`
/// view selection every node then prefers the same low-id descriptors,
/// views concentrate on a few hubs, and small overlays even partition. We
/// verified this experimentally; stable insertion order reproduces the
/// paper's balanced behavior while staying fully deterministic.
///
/// The view does **not** enforce a size bound itself: the protocol merges
/// freely and then truncates with [`View::select`], matching the
/// `merge`/`selectView` split of the paper's skeleton.
///
/// # Examples
///
/// ```
/// use pss_core::{NodeDescriptor, NodeId, View};
///
/// let mut view = View::new();
/// view.insert(NodeDescriptor::new(NodeId::new(5), 2));
/// view.insert(NodeDescriptor::new(NodeId::new(9), 0));
/// // Ordered by hop count: n9@0 first.
/// assert_eq!(view.head().unwrap().id(), NodeId::new(9));
/// // Re-inserting the same node keeps the freshest descriptor.
/// view.insert(NodeDescriptor::new(NodeId::new(5), 1));
/// assert_eq!(view.hop_count_of(NodeId::new(5)), Some(1));
/// assert_eq!(view.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct View {
    /// Sorted by hop count; ties keep insertion order.
    entries: Vec<NodeDescriptor>,
}

impl View {
    /// Creates an empty view.
    pub fn new() -> Self {
        View::default()
    }

    /// Builds a view from arbitrary descriptors, deduplicating per node
    /// (keeping the lowest hop count) and sorting by hop count.
    pub fn from_descriptors(descriptors: impl IntoIterator<Item = NodeDescriptor>) -> Self {
        let mut view = View::new();
        for d in descriptors {
            view.insert(d);
        }
        view
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The descriptors in hop-count order.
    pub fn descriptors(&self) -> &[NodeDescriptor] {
        &self.entries
    }

    /// Iterator over the descriptors in hop-count order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeDescriptor> {
        self.entries.iter()
    }

    /// Iterator over the node ids in hop-count order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|d| d.id())
    }

    /// The freshest descriptor (lowest hop count), if any.
    pub fn head(&self) -> Option<&NodeDescriptor> {
        self.entries.first()
    }

    /// The stalest descriptor (highest hop count), if any.
    pub fn tail(&self) -> Option<&NodeDescriptor> {
        self.entries.last()
    }

    /// True if the view holds a descriptor for `id`.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.iter().any(|d| d.id() == id)
    }

    /// Hop count of the descriptor for `id`, if present.
    pub fn hop_count_of(&self, id: NodeId) -> Option<u32> {
        self.entries.iter().find(|d| d.id() == id).map(|d| d.hop_count())
    }

    /// Inserts `d`, keeping the lower hop count if a descriptor for the same
    /// node already exists. New entries go after existing ones with the
    /// same hop count (stable).
    pub fn insert(&mut self, d: NodeDescriptor) {
        if let Some(pos) = self.entries.iter().position(|e| e.id() == d.id()) {
            if self.entries[pos].hop_count() <= d.hop_count() {
                return;
            }
            self.entries.remove(pos);
        }
        let at = self
            .entries
            .partition_point(|e| e.hop_count() <= d.hop_count());
        self.entries.insert(at, d);
    }

    /// Removes and returns the descriptor for `id`, if present.
    pub fn remove(&mut self, id: NodeId) -> Option<NodeDescriptor> {
        let pos = self.entries.iter().position(|d| d.id() == id)?;
        Some(self.entries.remove(pos))
    }

    /// Keeps only descriptors matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&NodeDescriptor) -> bool) {
        self.entries.retain(f);
    }

    /// Increments every descriptor's hop count (saturating), as
    /// `increaseHopCount(view)` does to a received view.
    pub fn increase_hop_counts(&mut self) {
        for d in &mut self.entries {
            *d = d.aged();
        }
        // Saturation at u32::MAX could merge previously distinct keys but
        // never breaks the (hop, id) order.
    }

    /// The paper's `merge(view1, view2)`: the union of both views, with the
    /// lowest-hop-count descriptor kept when both contain the same node.
    /// `self`'s entries precede `other`'s on equal hop counts (the paper's
    /// active thread calls `merge(view_p, view)` — received entries first).
    ///
    /// Descriptors of `excluded` (the merging node itself) are dropped — a
    /// node never stores its own descriptor in its own view.
    #[must_use]
    pub fn merge(&self, other: &View, excluded: Option<NodeId>) -> View {
        let mut merged: Vec<NodeDescriptor> = Vec::with_capacity(self.len() + other.len());
        for d in self
            .entries
            .iter()
            .chain(other.entries.iter())
            .filter(|d| Some(d.id()) != excluded)
        {
            // Per-node dedup keeping the lower hop count; the surviving
            // occurrence keeps its concatenation position, the stable sort
            // below then orders purely by hop count.
            match merged.iter().position(|e| e.id() == d.id()) {
                Some(pos) if merged[pos].hop_count() <= d.hop_count() => {}
                Some(pos) => merged[pos] = *d,
                None => merged.push(*d),
            }
        }
        merged.sort_by_key(|d| d.hop_count()); // stable
        View { entries: merged }
    }

    /// The paper's `selectView`: truncates to at most `c` descriptors
    /// according to the view selection policy. The surviving descriptors
    /// remain in hop-count order.
    pub fn select(&mut self, policy: ViewSelection, c: usize, rng: &mut impl Rng) {
        if self.entries.len() <= c {
            return;
        }
        match policy {
            ViewSelection::Head => self.entries.truncate(c),
            ViewSelection::Tail => {
                self.entries.drain(..self.entries.len() - c);
            }
            ViewSelection::Rand => {
                let mut chosen: Vec<usize> = sample(rng, self.entries.len(), c).into_iter().collect();
                chosen.sort_unstable();
                self.entries = chosen.into_iter().map(|i| self.entries[i]).collect();
            }
        }
    }

    /// Uniform random descriptor from the view, if any. This is the paper's
    /// "simplest possible implementation" of `getPeer()`.
    pub fn sample(&self, rng: &mut impl Rng) -> Option<&NodeDescriptor> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.random_range(0..self.entries.len())])
        }
    }

    /// Checks the structural invariants; used by tests and debug assertions.
    pub fn invariants_hold(&self) -> bool {
        let sorted = self
            .entries
            .windows(2)
            .all(|w| w[0].hop_count() <= w[1].hop_count());
        let mut ids: Vec<u64> = self.entries.iter().map(|d| d.id().as_u64()).collect();
        ids.sort_unstable();
        let unique = ids.windows(2).all(|w| w[0] != w[1]);
        sorted && unique
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<NodeDescriptor> for View {
    fn from_iter<I: IntoIterator<Item = NodeDescriptor>>(iter: I) -> Self {
        View::from_descriptors(iter)
    }
}

impl<'a> IntoIterator for &'a View {
    type Item = &'a NodeDescriptor;
    type IntoIter = std::slice::Iter<'a, NodeDescriptor>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn d(id: u64, hops: u32) -> NodeDescriptor {
        NodeDescriptor::new(NodeId::new(id), hops)
    }

    #[test]
    fn empty_view() {
        let v = View::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.head(), None);
        assert_eq!(v.tail(), None);
        assert!(v.invariants_hold());
        assert_eq!(v.to_string(), "[]");
    }

    #[test]
    fn insert_keeps_hop_order() {
        let mut v = View::new();
        v.insert(d(1, 5));
        v.insert(d(2, 1));
        v.insert(d(3, 3));
        let hops: Vec<u32> = v.iter().map(|x| x.hop_count()).collect();
        assert_eq!(hops, vec![1, 3, 5]);
        assert!(v.invariants_hold());
    }

    #[test]
    fn insert_dedups_keeping_freshest() {
        let mut v = View::new();
        v.insert(d(1, 5));
        v.insert(d(1, 2));
        assert_eq!(v.len(), 1);
        assert_eq!(v.hop_count_of(NodeId::new(1)), Some(2));
        // Staler duplicate is ignored.
        v.insert(d(1, 9));
        assert_eq!(v.hop_count_of(NodeId::new(1)), Some(2));
    }

    #[test]
    fn ties_preserve_insertion_order() {
        let mut v = View::new();
        v.insert(d(9, 3));
        v.insert(d(1, 3));
        v.insert(d(5, 3));
        let ids: Vec<u64> = v.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids, vec![9, 1, 5]);
    }

    #[test]
    fn tied_insert_goes_after_equal_hops_but_before_higher() {
        let mut v = View::new();
        v.insert(d(1, 2));
        v.insert(d(2, 4));
        v.insert(d(3, 2));
        let ids: Vec<u64> = v.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }

    #[test]
    fn merge_tie_order_puts_self_entries_first() {
        let a: View = [d(10, 3)].into_iter().collect();
        let b: View = [d(20, 3)].into_iter().collect();
        let m = a.merge(&b, None);
        let ids: Vec<u64> = m.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids, vec![10, 20]);
        let m2 = b.merge(&a, None);
        let ids2: Vec<u64> = m2.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids2, vec![20, 10]);
    }

    #[test]
    fn head_and_tail() {
        let v: View = [d(1, 7), d(2, 0), d(3, 4)].into_iter().collect();
        assert_eq!(v.head().unwrap().id(), NodeId::new(2));
        assert_eq!(v.tail().unwrap().id(), NodeId::new(1));
    }

    #[test]
    fn remove_and_contains() {
        let mut v: View = [d(1, 1), d(2, 2)].into_iter().collect();
        assert!(v.contains(NodeId::new(1)));
        let removed = v.remove(NodeId::new(1)).unwrap();
        assert_eq!(removed, d(1, 1));
        assert!(!v.contains(NodeId::new(1)));
        assert_eq!(v.remove(NodeId::new(1)), None);
    }

    #[test]
    fn retain_filters() {
        let mut v: View = [d(1, 1), d(2, 2), d(3, 3)].into_iter().collect();
        v.retain(|x| x.hop_count() < 3);
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId::new(3)));
    }

    #[test]
    fn increase_hop_counts_ages_everything() {
        let mut v: View = [d(1, 0), d(2, 7)].into_iter().collect();
        v.increase_hop_counts();
        assert_eq!(v.hop_count_of(NodeId::new(1)), Some(1));
        assert_eq!(v.hop_count_of(NodeId::new(2)), Some(8));
        assert!(v.invariants_hold());
    }

    #[test]
    fn merge_keeps_lowest_hop_count() {
        let a: View = [d(1, 5), d(2, 3)].into_iter().collect();
        let b: View = [d(1, 2), d(3, 4)].into_iter().collect();
        let m = a.merge(&b, None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.hop_count_of(NodeId::new(1)), Some(2));
        assert_eq!(m.hop_count_of(NodeId::new(2)), Some(3));
        assert_eq!(m.hop_count_of(NodeId::new(3)), Some(4));
        assert!(m.invariants_hold());
    }

    #[test]
    fn merge_excludes_self() {
        let a: View = [d(1, 5)].into_iter().collect();
        let b: View = [d(7, 0), d(2, 1)].into_iter().collect();
        let m = a.merge(&b, Some(NodeId::new(7)));
        assert!(!m.contains(NodeId::new(7)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a: View = [d(1, 1), d(2, 2)].into_iter().collect();
        let m = a.merge(&View::new(), None);
        assert_eq!(m, a);
        let m2 = View::new().merge(&a, None);
        assert_eq!(m2, a);
    }

    #[test]
    fn select_head_keeps_freshest() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut v: View = (0..10).map(|i| d(i, i as u32)).collect();
        v.select(ViewSelection::Head, 3, &mut rng);
        let hops: Vec<u32> = v.iter().map(|x| x.hop_count()).collect();
        assert_eq!(hops, vec![0, 1, 2]);
    }

    #[test]
    fn select_tail_keeps_stalest() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut v: View = (0..10).map(|i| d(i, i as u32)).collect();
        v.select(ViewSelection::Tail, 3, &mut rng);
        let hops: Vec<u32> = v.iter().map(|x| x.hop_count()).collect();
        assert_eq!(hops, vec![7, 8, 9]);
    }

    #[test]
    fn select_rand_keeps_subset_in_order() {
        let mut rng = SmallRng::seed_from_u64(42);
        let original: View = (0..20).map(|i| d(i, i as u32)).collect();
        let mut v = original.clone();
        v.select(ViewSelection::Rand, 8, &mut rng);
        assert_eq!(v.len(), 8);
        assert!(v.invariants_hold());
        for x in v.iter() {
            assert!(original.contains(x.id()));
        }
    }

    #[test]
    fn select_no_op_when_small_enough() {
        let mut rng = SmallRng::seed_from_u64(0);
        let original: View = (0..3).map(|i| d(i, i as u32)).collect();
        for policy in [ViewSelection::Head, ViewSelection::Tail, ViewSelection::Rand] {
            let mut v = original.clone();
            v.select(policy, 3, &mut rng);
            assert_eq!(v, original);
            let mut v = original.clone();
            v.select(policy, 10, &mut rng);
            assert_eq!(v, original);
        }
    }

    #[test]
    fn sample_is_some_iff_non_empty() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(View::new().sample(&mut rng).is_none());
        let v: View = [d(1, 0)].into_iter().collect();
        assert_eq!(v.sample(&mut rng).unwrap().id(), NodeId::new(1));
    }

    #[test]
    fn sample_covers_all_entries() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v: View = (0..5).map(|i| d(i, 0)).collect();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(v.sample(&mut rng).unwrap().id());
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn display_lists_descriptors() {
        let v: View = [d(1, 0), d(2, 3)].into_iter().collect();
        assert_eq!(v.to_string(), "[n1@0 n2@3]");
    }

    #[test]
    fn into_iterator_for_reference() {
        let v: View = [d(1, 0), d(2, 3)].into_iter().collect();
        let count = (&v).into_iter().count();
        assert_eq!(count, 2);
    }
}
