//! Partial views: hop-count-ordered sets of node descriptors.

use core::fmt;

use rand::seq::index::{sample, sample_into};
use rand::Rng;

use crate::{NodeDescriptor, NodeId, ViewSelection};

/// A partial view: "a list with at most one descriptor per node and ordered
/// according to increasing hop count" (paper, Section 3).
///
/// Invariants maintained by every operation:
///
/// 1. at most one descriptor per node,
/// 2. entries sorted by increasing hop count,
/// 3. ties in hop count keep their insertion order (stable).
///
/// The tie rule matters more than it looks. The paper notes the first/last
/// `k` elements are "not always uniquely defined" under ties — incidental
/// list order, varying per node. A *globally consistent* tie-break (e.g. by
/// node id) instead injects systematic selection pressure: under `head`
/// view selection every node then prefers the same low-id descriptors,
/// views concentrate on a few hubs, and small overlays even partition. We
/// verified this experimentally; stable insertion order reproduces the
/// paper's balanced behavior while staying fully deterministic.
///
/// The view does **not** enforce a size bound itself: the protocol merges
/// freely and then truncates with [`View::select`], matching the
/// `merge`/`selectView` split of the paper's skeleton.
///
/// # Performance
///
/// Alongside the hop-ordered entry list the view keeps an id-sorted
/// `(id, entry position)` index, materialized lazily, that makes
/// [`View::contains`] / [`View::hop_count_of`] `O(log c)`. Merging never
/// searches: duplicates are resolved in one linear pass through an
/// epoch-stamped hash table kept in [`MergeScratch`], and the simulation
/// hot path ([`View::merge_select_from_slice`]) absorbs a received
/// descriptor buffer with a single sort-free pass, no steady-state
/// allocation, and no virtual calls. The original quadratic algorithms are
/// retained verbatim in [`reference`] and property tests assert
/// byte-identical behavior.
///
/// # Examples
///
/// ```
/// use pss_core::{NodeDescriptor, NodeId, View};
///
/// let mut view = View::new();
/// view.insert(NodeDescriptor::new(NodeId::new(5), 2));
/// view.insert(NodeDescriptor::new(NodeId::new(9), 0));
/// // Ordered by hop count: n9@0 first.
/// assert_eq!(view.head().unwrap().id(), NodeId::new(9));
/// // Re-inserting the same node keeps the freshest descriptor.
/// view.insert(NodeDescriptor::new(NodeId::new(5), 1));
/// assert_eq!(view.hop_count_of(NodeId::new(5)), Some(1));
/// assert_eq!(view.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct View {
    /// Sorted by hop count; ties keep insertion order.
    entries: Vec<NodeDescriptor>,
    /// Sorted by id: `(id, position in entries)`. Kept in sync with
    /// `entries` by every mutation (hop counts live only in the entries,
    /// so aging never touches the index). Pure derived acceleration:
    /// excluded from serialization and rebuilt lazily, so untrusted input
    /// can never smuggle in an inconsistent index.
    #[cfg_attr(feature = "serde", serde(skip))]
    index: Vec<(u64, u32)>,
}

/// Reusable buffers for the allocation-free merge path; see
/// [`View::merge_from`] and [`View::assign_aged`].
///
/// One scratch can be shared across any number of merges (protocol nodes
/// keep one for their lifetime). The buffers grow to the working-set size
/// once and are reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct MergeScratch {
    /// Tie-precedent side entries whose hops were lowered by the other
    /// side, with their positions; re-sorted by `(hop, position)`.
    lowered: Vec<(NodeDescriptor, u32)>,
    /// The full tie-precedent sequence in `(hop, position)` order.
    resolved: Vec<(NodeDescriptor, u32)>,
    /// Per-position resolved hop counts of the tie-precedent side.
    hops: Vec<u32>,
    /// Per-position "is duplicate/excluded" flags of the other side.
    skip: Vec<bool>,
    /// Random-selection index buffer for `rand` view selection.
    chosen: Vec<usize>,
    /// `(id, hop, arrival)` triples for bulk construction.
    keyed: Vec<(u64, u32, u32)>,
    /// Staging view the merge result is assembled in.
    out: View,
    /// Open-addressed id table for duplicate resolution: keys, stored
    /// positions, and the epoch that validates a slot (incrementing
    /// `epoch` clears the table in O(1)).
    table_keys: Vec<u64>,
    table_pos: Vec<u32>,
    table_epoch: Vec<u32>,
    epoch: u32,
}

/// Multiplicative hash of a node id into `mask + 1` power-of-two slots.
#[inline]
fn id_slot(id: u64, mask: usize) -> usize {
    (id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & mask
}

std::thread_local! {
    /// Scratch backing the allocating [`View::merge`] wrapper.
    static MERGE_SCRATCH: core::cell::RefCell<MergeScratch> =
        core::cell::RefCell::new(MergeScratch::default());
    /// Candidate buffer backing [`View::sample_filtered`].
    static FILTER_CANDIDATES: core::cell::RefCell<Vec<NodeId>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

impl View {
    /// Creates an empty view.
    pub fn new() -> Self {
        View::default()
    }

    /// Builds a view from arbitrary descriptors, deduplicating per node
    /// (keeping the lowest hop count) and sorting by hop count.
    ///
    /// Equivalent to inserting every descriptor in order with
    /// [`View::insert`], but `O(k log k)` instead of `O(k²)`.
    pub fn from_descriptors(descriptors: impl IntoIterator<Item = NodeDescriptor>) -> Self {
        let mut view = View::new();
        let mut keyed = Vec::new();
        view.rebuild(descriptors, 0, &mut keyed);
        view
    }

    /// Replaces this view's contents with `descriptors`, each aged by
    /// `extra_hops`, reusing both this view's storage and the scratch
    /// buffers: the bulk equivalent of `increaseHopCount` applied to a
    /// freshly constructed view, with no steady-state allocation.
    pub fn assign_aged(
        &mut self,
        descriptors: impl IntoIterator<Item = NodeDescriptor>,
        extra_hops: u32,
        scratch: &mut MergeScratch,
    ) {
        self.rebuild(descriptors, extra_hops, &mut scratch.keyed);
    }

    /// Shared bulk-construction core: dedup per id keeping the lowest hop
    /// count (earliest arrival on ties), order by `(hop, arrival)`.
    ///
    /// Fast path: protocol messages carry well-formed view content
    /// (hop-sorted, one descriptor per node), for which construction is a
    /// straight copy plus one index sort. Detected optimistically: hop
    /// order is checked on ingest, id uniqueness after the index sort; any
    /// violation falls back to the general dedup path.
    fn rebuild(
        &mut self,
        descriptors: impl IntoIterator<Item = NodeDescriptor>,
        extra_hops: u32,
        keyed: &mut Vec<(u64, u32, u32)>,
    ) {
        keyed.clear();
        let mut hop_sorted = true;
        let mut prev_hop = 0u32;
        keyed.extend(descriptors.into_iter().enumerate().map(|(i, d)| {
            let hop = d.hop_count();
            hop_sorted &= prev_hop <= hop;
            prev_hop = hop;
            (d.id().as_u64(), hop, i as u32)
        }));
        if hop_sorted {
            self.entries.clear();
            self.entries.extend(keyed.iter().map(|&(id, hop, _)| {
                NodeDescriptor::new(NodeId::new(id), hop.saturating_add(extra_hops))
            }));
            self.index.clear();
            self.index
                .extend(keyed.iter().map(|&(id, _, pos)| (id, pos)));
            self.index.sort_unstable_by_key(|&(id, _)| id);
            if self.index.windows(2).all(|w| w[0].0 < w[1].0) {
                return;
            }
            // Duplicate ids: fall through to the general path.
        }
        // Winner per id = lowest hop count, earliest arrival among equals —
        // exactly what sequential insertion keeps. Dedup and order use the
        // *raw* hop counts; aging is applied at emission, matching
        // "construct, then increaseHopCount" even when aging saturates.
        keyed.sort_unstable();
        keyed.dedup_by_key(|&mut (id, _, _)| id);
        // Entry order: by hop count, ties by the winner's arrival rank (the
        // stable insertion order).
        keyed.sort_unstable_by_key(|&(_, hop, arrival)| (hop, arrival));
        self.entries.clear();
        self.entries.extend(keyed.iter().map(|&(id, hop, _)| {
            NodeDescriptor::new(NodeId::new(id), hop.saturating_add(extra_hops))
        }));
        self.index.clear();
        self.index.extend(
            keyed
                .iter()
                .enumerate()
                .map(|(pos, &(id, _, _))| (id, pos as u32)),
        );
        self.index.sort_unstable_by_key(|&(id, _)| id);
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The descriptors in hop-count order.
    pub fn descriptors(&self) -> &[NodeDescriptor] {
        &self.entries
    }

    /// Iterator over the descriptors in hop-count order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeDescriptor> {
        self.entries.iter()
    }

    /// Iterator over the node ids in hop-count order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|d| d.id())
    }

    /// The freshest descriptor (lowest hop count), if any.
    pub fn head(&self) -> Option<&NodeDescriptor> {
        self.entries.first()
    }

    /// The stalest descriptor (highest hop count), if any.
    pub fn tail(&self) -> Option<&NodeDescriptor> {
        self.entries.last()
    }

    /// True if the view holds a descriptor for `id`: `O(log c)` when the
    /// id index is materialized, a linear scan otherwise (see
    /// [`View::merge_select_from_slice`]).
    pub fn contains(&self, id: NodeId) -> bool {
        if self.is_indexed() {
            self.index_of(id).is_ok()
        } else {
            self.entries.iter().any(|d| d.id() == id)
        }
    }

    /// Hop count of the descriptor for `id`, if present. Same cost model
    /// as [`View::contains`].
    pub fn hop_count_of(&self, id: NodeId) -> Option<u32> {
        if self.is_indexed() {
            self.index_of(id)
                .ok()
                .map(|i| self.entries[self.index[i].1 as usize].hop_count())
        } else {
            self.entries
                .iter()
                .find(|d| d.id() == id)
                .map(|d| d.hop_count())
        }
    }

    /// True when the id index mirrors the entries. The absorb fast path
    /// leaves views unindexed (the index is pure lookup acceleration);
    /// mutating operations materialize it on demand.
    fn is_indexed(&self) -> bool {
        self.index.len() == self.entries.len()
    }

    /// Materializes the id index if it is currently stale.
    fn ensure_index(&mut self) {
        if !self.is_indexed() {
            self.rebuild_index();
        }
    }

    /// Binary search in the id index (requires `is_indexed`).
    fn index_of(&self, id: NodeId) -> Result<usize, usize> {
        debug_assert!(self.is_indexed());
        self.index.binary_search_by_key(&id.as_u64(), |&(i, _)| i)
    }

    /// Inserts `d`, keeping the lower hop count if a descriptor for the same
    /// node already exists. New entries go after existing ones with the
    /// same hop count (stable).
    pub fn insert(&mut self, d: NodeDescriptor) {
        self.ensure_index();
        match self.index_of(d.id()) {
            Ok(i) => {
                let (_, old_pos) = self.index[i];
                if self.entries[old_pos as usize].hop_count() <= d.hop_count() {
                    return;
                }
                self.entries.remove(old_pos as usize);
                self.shift_positions_above(old_pos, -1);
                let at = self
                    .entries
                    .partition_point(|e| e.hop_count() <= d.hop_count());
                self.entries.insert(at, d);
                self.shift_positions_above(at as u32, 1);
                self.index[i] = (d.id().as_u64(), at as u32);
            }
            Err(i) => {
                let at = self
                    .entries
                    .partition_point(|e| e.hop_count() <= d.hop_count());
                self.entries.insert(at, d);
                self.shift_positions_above(at as u32, 1);
                self.index.insert(i, (d.id().as_u64(), at as u32));
            }
        }
    }

    /// Removes and returns the descriptor for `id`, if present.
    pub fn remove(&mut self, id: NodeId) -> Option<NodeDescriptor> {
        self.ensure_index();
        let i = self.index_of(id).ok()?;
        let (_, pos) = self.index.remove(i);
        let removed = self.entries.remove(pos as usize);
        self.shift_positions_above(pos, -1);
        Some(removed)
    }

    /// Adds `delta` to every index position at or above `from` (after an
    /// entry insertion/removal at that position).
    fn shift_positions_above(&mut self, from: u32, delta: i32) {
        for (_, pos) in &mut self.index {
            if *pos >= from {
                *pos = pos.wrapping_add(delta as u32);
            }
        }
    }

    /// Keeps only descriptors matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&NodeDescriptor) -> bool) {
        self.entries.retain(f);
        self.index.clear(); // materialized lazily on demand
    }

    /// Reconstructs the id index from the entries.
    fn rebuild_index(&mut self) {
        self.index.clear();
        self.index.extend(
            self.entries
                .iter()
                .enumerate()
                .map(|(pos, d)| (d.id().as_u64(), pos as u32)),
        );
        self.index.sort_unstable_by_key(|&(id, _)| id);
    }

    /// Increments every descriptor's hop count (saturating), as
    /// `increaseHopCount(view)` does to a received view.
    pub fn increase_hop_counts(&mut self) {
        for d in &mut self.entries {
            *d = d.aged();
        }
        // The index stores no hop counts, so aging leaves it untouched.
        // Saturation at u32::MAX could merge previously distinct keys but
        // never breaks the (hop, id) order.
    }

    /// The paper's `merge(view1, view2)`: the union of both views, with the
    /// lowest-hop-count descriptor kept when both contain the same node.
    /// `self`'s entries precede `other`'s on equal hop counts (the paper's
    /// active thread calls `merge(view_p, view)` — received entries first).
    ///
    /// Descriptors of `excluded` (the merging node itself) are dropped — a
    /// node never stores its own descriptor in its own view.
    ///
    /// Allocates the result (backed by a thread-local scratch) with its id
    /// index left for lazy materialization; the simulation hot path uses
    /// [`View::merge_select_from_slice`] with an explicit [`MergeScratch`]
    /// instead.
    #[must_use]
    pub fn merge(&self, other: &View, excluded: Option<NodeId>) -> View {
        let mut out = View {
            entries: Vec::with_capacity(self.len() + other.len()),
            index: Vec::new(),
        };
        MERGE_SCRATCH.with(|scratch| {
            self.merge_into(other, excluded, &mut out, &mut scratch.borrow_mut());
        });
        out
    }

    /// In-place variant of [`View::merge`]: `self ← merge(received, self)`,
    /// the exact absorption step of the protocol skeleton (`received`'s
    /// entries take tie precedence). Reuses `scratch`; allocation-free once
    /// the buffers are warm.
    pub fn merge_from(
        &mut self,
        received: &View,
        excluded: Option<NodeId>,
        scratch: &mut MergeScratch,
    ) {
        let mut out = core::mem::take(&mut scratch.out);
        received.merge_into(self, excluded, &mut out, scratch);
        core::mem::swap(self, &mut out);
        // The displaced old storage becomes the next call's staging view.
        scratch.out = out;
    }

    /// Fused `view ← selectView(merge(received, view))`: the absorption +
    /// truncation step of the protocol skeleton in one pass, bit-identical
    /// to [`View::merge_from`] followed by [`View::select`] (including the
    /// RNG draws of `rand` view selection) but cheaper: the output index is
    /// built once, over the `c` surviving entries only, and `head`
    /// selection stops merging as soon as `c` entries are emitted.
    pub fn merge_select_from(
        &mut self,
        received: &View,
        excluded: Option<NodeId>,
        policy: ViewSelection,
        c: usize,
        rng: &mut impl Rng,
        scratch: &mut MergeScratch,
    ) {
        let mut out = core::mem::take(&mut scratch.out);
        received.merge_select_into(self, excluded, policy, c, rng, &mut out, scratch);
        core::mem::swap(self, &mut out);
        scratch.out = out;
    }

    /// Fused merge+select core: see [`View::merge_select_from`].
    #[allow(clippy::too_many_arguments)]
    fn merge_select_into(
        &self,
        other: &View,
        excluded: Option<NodeId>,
        policy: ViewSelection,
        c: usize,
        rng: &mut impl Rng,
        out: &mut View,
        scratch: &mut MergeScratch,
    ) {
        let excluded_raw = excluded.map(|id| id.as_u64());
        let (merged_len, excluded_self_pos) =
            resolve_with_table(&self.entries, &other.entries, excluded_raw, scratch)
                .expect("a valid view has no duplicate ids");
        {
            let MergeScratch {
                lowered,
                resolved,
                hops,
                ..
            } = scratch;
            build_resolved(&self.entries, hops, excluded_self_pos, lowered, resolved);
        }
        emit_selected(
            &scratch.resolved,
            other.entries.as_slice(),
            &scratch.skip,
            &mut scratch.chosen,
            merged_len,
            policy,
            c,
            rng,
            out,
        );
        out.index.clear(); // materialized lazily on demand
    }

    /// Fused absorb for wire-format descriptor buffers: semantically
    /// `self ← selectView(merge(View::from(received), self))` with
    /// `received` taking tie precedence, but without constructing a `View`
    /// for the received side at all — duplicate resolution runs through an
    /// O(1)-cleared hash table in `scratch`, so the whole absorb performs
    /// exactly one sort (the output id index).
    ///
    /// `received` must be *well-formed view content* — hop-count-sorted with
    /// at most one descriptor per node, which is what every protocol message
    /// built from a valid view carries. Returns `false` without touching
    /// `self` (or the RNG) if the buffer is malformed; callers then fall
    /// back to the general path ([`View::assign_aged`] +
    /// [`View::merge_select_from`]).
    ///
    /// The resulting view is left *unindexed*: the id index is pure lookup
    /// acceleration, rebuilt on demand by the operations that need it, and
    /// the absorb hot path (whose next merge resolves through the hash
    /// table, not the index) would only throw the sort away.
    #[allow(clippy::too_many_arguments)]
    pub fn merge_select_from_slice(
        &mut self,
        received: &[NodeDescriptor],
        excluded: Option<NodeId>,
        policy: ViewSelection,
        c: usize,
        rng: &mut impl Rng,
        scratch: &mut MergeScratch,
    ) -> bool {
        if !received
            .windows(2)
            .all(|w| w[0].hop_count() <= w[1].hop_count())
        {
            return false;
        }
        let excluded_raw = excluded.map(|id| id.as_u64());
        let Some((merged_len, excluded_rx_pos)) =
            resolve_with_table(received, &self.entries, excluded_raw, scratch)
        else {
            return false; // duplicate id: malformed buffer
        };
        {
            let MergeScratch {
                lowered,
                resolved,
                hops,
                ..
            } = scratch;
            build_resolved(received, hops, excluded_rx_pos, lowered, resolved);
        }
        let mut out = core::mem::take(&mut scratch.out);
        emit_selected(
            &scratch.resolved,
            self.entries.as_slice(),
            &scratch.skip,
            &mut scratch.chosen,
            merged_len,
            policy,
            c,
            rng,
            &mut out,
        );
        out.index.clear(); // left unindexed, see above
        core::mem::swap(self, &mut out);
        scratch.out = out;
        true
    }

    /// Merges `self` (tie-precedent side) with `other` into `out`, reusing
    /// `scratch`. Semantics are identical to [`View::merge`]; cost is one
    /// linear hash-resolution pass over both entry lists plus a two-way
    /// ordered merge.
    pub fn merge_into(
        &self,
        other: &View,
        excluded: Option<NodeId>,
        out: &mut View,
        scratch: &mut MergeScratch,
    ) {
        let excluded_raw = excluded.map(|id| id.as_u64());
        let (merged_len, excluded_self_pos) =
            resolve_with_table(&self.entries, &other.entries, excluded_raw, scratch)
                .expect("a valid view has no duplicate ids");
        {
            let MergeScratch {
                lowered,
                resolved,
                hops,
                ..
            } = scratch;
            build_resolved(&self.entries, hops, excluded_self_pos, lowered, resolved);
        }
        // A full (unselective) emit is head selection with no size bound.
        emit_merge(
            &scratch.resolved,
            other.entries.as_slice(),
            &scratch.skip,
            merged_len,
            0,
            out,
        );
        out.index.clear(); // materialized lazily on demand
    }

    /// The paper's `selectView`: truncates to at most `c` descriptors
    /// according to the view selection policy. The surviving descriptors
    /// remain in hop-count order.
    pub fn select(&mut self, policy: ViewSelection, c: usize, rng: &mut impl Rng) {
        if self.entries.len() <= c {
            return;
        }
        match policy {
            ViewSelection::Head => self.entries.truncate(c),
            ViewSelection::Tail => {
                self.entries.drain(..self.entries.len() - c);
            }
            ViewSelection::Rand => {
                let mut chosen = sample(rng, self.entries.len(), c).into_vec();
                chosen.sort_unstable();
                for (k, &i) in chosen.iter().enumerate() {
                    self.entries[k] = self.entries[i];
                }
                self.entries.truncate(c);
            }
        }
        self.index.clear(); // materialized lazily on demand
    }

    /// Uniform random entry among those for which `eligible` returns true,
    /// if any — the shared implementation of `rand` peer selection.
    ///
    /// Contract: `eligible` (a `FnMut` — callers may pass stateful
    /// filters) is consulted exactly once per entry, in hop-count order,
    /// and the RNG is drawn from exactly once when any candidate exists
    /// (one `0..count` draw, like indexing a collected candidate list).
    /// Allocation-free: candidates collect into a reusable thread-local
    /// buffer.
    pub fn sample_filtered(
        &self,
        rng: &mut impl Rng,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        FILTER_CANDIDATES.with(|buffer| {
            let mut candidates = buffer.borrow_mut();
            candidates.clear();
            candidates.extend(self.ids().filter(|&id| eligible(id)));
            if candidates.is_empty() {
                None
            } else {
                Some(candidates[rng.random_range(0..candidates.len())])
            }
        })
    }

    /// Uniform random descriptor from the view, if any. This is the paper's
    /// "simplest possible implementation" of `getPeer()`.
    pub fn sample(&self, rng: &mut impl Rng) -> Option<&NodeDescriptor> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.random_range(0..self.entries.len())])
        }
    }

    /// Checks the structural invariants; used by tests and debug assertions.
    pub fn invariants_hold(&self) -> bool {
        let sorted = self
            .entries
            .windows(2)
            .all(|w| w[0].hop_count() <= w[1].hop_count());
        // Pairwise uniqueness scan: quadratic in the view size (≤ c, tiny)
        // but allocation-free, so the debug_asserts in the absorb hot path
        // don't make debug builds allocate per message.
        let unique = self
            .entries
            .iter()
            .enumerate()
            .all(|(i, a)| self.entries[i + 1..].iter().all(|b| a.id() != b.id()));
        // The id index either mirrors the entries exactly or is absent
        // (views produced by the absorb fast path stay unindexed until an
        // operation materializes the index).
        let index_ok = if self.index.is_empty() {
            true
        } else {
            self.index.windows(2).all(|w| w[0].0 < w[1].0)
                && self.index.len() == self.entries.len()
                && self.index.iter().all(|&(id, pos)| {
                    self.entries
                        .get(pos as usize)
                        .is_some_and(|d| d.id().as_u64() == id)
                })
        };
        sorted && unique && index_ok
    }
}

/// Resolves duplicates between the tie-precedent entry sequence `a` and the
/// other side `b` through the scratch's epoch-stamped open-addressed id
/// table (O(1) clear, no per-entry searches, no id ordering required):
///
/// * `scratch.hops[p]` — resolved (minimum) hop count of `a[p]`,
/// * `scratch.skip[p]` — `b[p]` loses to a duplicate in `a` or is excluded.
///
/// Returns `(merged_len, excluded_a_pos)` — the number of entries the merge
/// will emit and the position of the excluded id within `a` — or `None` if
/// `a` holds the same id twice (malformed input; `b`, a valid view, cannot).
fn resolve_with_table(
    a: &[NodeDescriptor],
    b: &[NodeDescriptor],
    excluded_raw: Option<u64>,
    scratch: &mut MergeScratch,
) -> Option<(usize, Option<usize>)> {
    let MergeScratch {
        hops,
        skip,
        table_keys,
        table_pos,
        table_epoch,
        epoch,
        ..
    } = scratch;
    let capacity = (a.len() * 4).next_power_of_two().max(64);
    if table_keys.len() < capacity {
        table_keys.resize(capacity, 0);
        table_pos.resize(capacity, 0);
        table_epoch.resize(capacity, 0);
    }
    let mask = table_keys.len() - 1;
    *epoch = epoch.wrapping_add(1);
    if *epoch == 0 {
        // Wrapped: stale slots could alias the fresh epoch; hard-clear.
        table_epoch.fill(0);
        *epoch = 1;
    }
    let epoch = *epoch;

    let mut excluded_a_pos = None;
    let mut a_count = 0usize;
    for (pos, d) in a.iter().enumerate() {
        let id = d.id().as_u64();
        if Some(id) == excluded_raw {
            if excluded_a_pos.is_some() {
                // The excluded id bypasses the table, so repeats of it must
                // be caught here: a repeated id is a malformed buffer.
                return None;
            }
            excluded_a_pos = Some(pos);
            continue;
        }
        a_count += 1;
        let mut slot = id_slot(id, mask);
        loop {
            if table_epoch[slot] != epoch {
                table_keys[slot] = id;
                table_pos[slot] = pos as u32;
                table_epoch[slot] = epoch;
                break;
            }
            if table_keys[slot] == id {
                return None; // duplicate id within `a`
            }
            slot = (slot + 1) & mask;
        }
    }

    hops.clear();
    hops.extend(a.iter().map(|d| d.hop_count()));
    skip.clear();
    skip.resize(b.len(), false);
    let mut b_count = 0usize;
    for (pos, d) in b.iter().enumerate() {
        let id = d.id().as_u64();
        if Some(id) == excluded_raw {
            skip[pos] = true;
            continue;
        }
        let mut slot = id_slot(id, mask);
        loop {
            if table_epoch[slot] != epoch {
                b_count += 1;
                break;
            }
            if table_keys[slot] == id {
                let a_pos = table_pos[slot] as usize;
                skip[pos] = true;
                if d.hop_count() < hops[a_pos] {
                    hops[a_pos] = d.hop_count();
                }
                break;
            }
            slot = (slot + 1) & mask;
        }
    }
    Some((a_count + b_count, excluded_a_pos))
}

/// Two-way merge ordered by `(hop, anchor)` of the resolved tie-precedent
/// sequence (which wins ties) against the surviving `rest` entries, writing
/// at most `emit_limit` merged entries and dropping the first `skip_first`
/// of them. Touches only `out.entries`; index handling is the caller's.
fn emit_merge(
    resolved: &[(NodeDescriptor, u32)],
    rest: &[NodeDescriptor],
    skip: &[bool],
    emit_limit: usize,
    skip_first: usize,
    out: &mut View,
) {
    out.entries.clear();
    out.entries.reserve(emit_limit.saturating_sub(skip_first));
    let (mut i, mut j) = (0, 0);
    while j < rest.len() && skip[j] {
        j += 1;
    }
    let mut emitted = 0usize;
    while emitted < emit_limit {
        let take_own = match (resolved.get(i), rest.get(j)) {
            (Some(&(d, _)), Some(r)) => d.hop_count() <= r.hop_count(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let d = if take_own {
            let (d, _) = resolved[i];
            i += 1;
            d
        } else {
            let d = rest[j];
            j += 1;
            while j < rest.len() && skip[j] {
                j += 1;
            }
            d
        };
        if emitted >= skip_first {
            out.entries.push(d);
        }
        emitted += 1;
    }
}

/// The fused emit + selectView step shared by [`View::merge_select_from`]
/// and [`View::merge_select_from_slice`]: [`emit_merge`] with the selection
/// policy folded in —
/// * `head` keeps the first `c` merged entries (stops early),
/// * `tail` keeps the last `c` (skips the first `merged_len − c`),
/// * `rand` keeps a sorted random index subset of the full merge (identical
///   RNG draws to [`View::select`]).
#[allow(clippy::too_many_arguments)]
fn emit_selected(
    resolved: &[(NodeDescriptor, u32)],
    rest: &[NodeDescriptor],
    skip: &[bool],
    chosen: &mut Vec<usize>,
    merged_len: usize,
    policy: ViewSelection,
    c: usize,
    rng: &mut impl Rng,
    out: &mut View,
) {
    let (emit_limit, skip_first) = match policy {
        ViewSelection::Head => (c.min(merged_len), 0),
        ViewSelection::Tail => (merged_len, merged_len.saturating_sub(c)),
        ViewSelection::Rand => (merged_len, 0),
    };
    emit_merge(resolved, rest, skip, emit_limit, skip_first, out);
    if policy == ViewSelection::Rand && out.entries.len() > c {
        // Identical index draws to `View::select`.
        sample_into(rng, out.entries.len(), c, chosen);
        chosen.sort_unstable();
        for (k, &i) in chosen.iter().enumerate() {
            out.entries[k] = out.entries[i];
        }
        out.entries.truncate(c);
    }
}

/// Emits the tie-precedent sequence in `(resolved hop, original position)`
/// order into `resolved`. Entries whose hops are unchanged form a
/// still-sorted subsequence of `own`; entries lowered by the other side are
/// collected into `lowered` (usually few), sorted explicitly, and merged
/// back in.
fn build_resolved(
    own: &[NodeDescriptor],
    hops: &[u32],
    excluded_pos: Option<usize>,
    lowered: &mut Vec<(NodeDescriptor, u32)>,
    resolved: &mut Vec<(NodeDescriptor, u32)>,
) {
    resolved.clear();
    resolved.reserve(own.len());
    lowered.clear();
    for (pos, d) in own.iter().enumerate() {
        if hops[pos] != d.hop_count() {
            lowered.push((NodeDescriptor::new(d.id(), hops[pos]), pos as u32));
        }
    }
    if lowered.is_empty() {
        // Common case: nothing lowered, the sequence is `own` minus the
        // excluded entry.
        resolved.extend(
            own.iter()
                .enumerate()
                .filter(|&(pos, _)| Some(pos) != excluded_pos)
                .map(|(pos, d)| (*d, pos as u32)),
        );
    } else {
        lowered.sort_unstable_by_key(|&(d, pos)| (d.hop_count(), pos));
        // Two-pointer merge of the unchanged subsequence (sorted by
        // construction) with the lowered list, by (hop, position).
        let mut l = 0;
        for (pos, d) in own.iter().enumerate() {
            if Some(pos) == excluded_pos || hops[pos] != d.hop_count() {
                continue;
            }
            while l < lowered.len() {
                let (ld, lpos) = lowered[l];
                if (ld.hop_count(), lpos) < (d.hop_count(), pos as u32) {
                    resolved.push((ld, lpos));
                    l += 1;
                } else {
                    break;
                }
            }
            resolved.push((*d, pos as u32));
        }
        resolved.extend_from_slice(&lowered[l..]);
    }
}

impl PartialEq for View {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for View {}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<NodeDescriptor> for View {
    fn from_iter<I: IntoIterator<Item = NodeDescriptor>>(iter: I) -> Self {
        View::from_descriptors(iter)
    }
}

impl<'a> IntoIterator for &'a View {
    type Item = &'a NodeDescriptor;
    type IntoIter = std::slice::Iter<'a, NodeDescriptor>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// The original (pre-optimization) view algorithms, retained verbatim as
/// executable specifications: the differential property tests assert the
/// optimized index-based implementations above produce byte-identical
/// results. Not part of the public API.
#[doc(hidden)]
pub mod reference {
    use super::{NodeDescriptor, NodeId};

    /// Sequential-insertion view construction by linear scan (the seed's
    /// `View::insert` loop). Returns the entry list in view order.
    pub fn from_descriptors(
        descriptors: impl IntoIterator<Item = NodeDescriptor>,
    ) -> Vec<NodeDescriptor> {
        let mut entries: Vec<NodeDescriptor> = Vec::new();
        for d in descriptors {
            if let Some(pos) = entries.iter().position(|e| e.id() == d.id()) {
                if entries[pos].hop_count() <= d.hop_count() {
                    continue;
                }
                entries.remove(pos);
            }
            let at = entries.partition_point(|e| e.hop_count() <= d.hop_count());
            entries.insert(at, d);
        }
        entries
    }

    /// The seed's quadratic merge: concatenate, dedup by first occurrence
    /// keeping the lower hop count, stable-sort by hop count.
    pub fn merge(
        a: &[NodeDescriptor],
        b: &[NodeDescriptor],
        excluded: Option<NodeId>,
    ) -> Vec<NodeDescriptor> {
        let mut merged: Vec<NodeDescriptor> = Vec::with_capacity(a.len() + b.len());
        for d in a
            .iter()
            .chain(b.iter())
            .filter(|d| Some(d.id()) != excluded)
        {
            match merged.iter().position(|e| e.id() == d.id()) {
                Some(pos) if merged[pos].hop_count() <= d.hop_count() => {}
                Some(pos) => merged[pos] = *d,
                None => merged.push(*d),
            }
        }
        merged.sort_by_key(|d| d.hop_count()); // stable
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn d(id: u64, hops: u32) -> NodeDescriptor {
        NodeDescriptor::new(NodeId::new(id), hops)
    }

    #[test]
    fn empty_view() {
        let v = View::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.head(), None);
        assert_eq!(v.tail(), None);
        assert!(v.invariants_hold());
        assert_eq!(v.to_string(), "[]");
    }

    #[test]
    fn insert_keeps_hop_order() {
        let mut v = View::new();
        v.insert(d(1, 5));
        v.insert(d(2, 1));
        v.insert(d(3, 3));
        let hops: Vec<u32> = v.iter().map(|x| x.hop_count()).collect();
        assert_eq!(hops, vec![1, 3, 5]);
        assert!(v.invariants_hold());
    }

    #[test]
    fn insert_dedups_keeping_freshest() {
        let mut v = View::new();
        v.insert(d(1, 5));
        v.insert(d(1, 2));
        assert_eq!(v.len(), 1);
        assert_eq!(v.hop_count_of(NodeId::new(1)), Some(2));
        // Staler duplicate is ignored.
        v.insert(d(1, 9));
        assert_eq!(v.hop_count_of(NodeId::new(1)), Some(2));
        assert!(v.invariants_hold());
    }

    #[test]
    fn ties_preserve_insertion_order() {
        let mut v = View::new();
        v.insert(d(9, 3));
        v.insert(d(1, 3));
        v.insert(d(5, 3));
        let ids: Vec<u64> = v.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids, vec![9, 1, 5]);
    }

    #[test]
    fn tied_insert_goes_after_equal_hops_but_before_higher() {
        let mut v = View::new();
        v.insert(d(1, 2));
        v.insert(d(2, 4));
        v.insert(d(3, 2));
        let ids: Vec<u64> = v.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids, vec![1, 3, 2]);
        assert!(v.invariants_hold());
    }

    #[test]
    fn from_descriptors_matches_sequential_insertion() {
        let ds = [
            d(3, 2),
            d(1, 2),
            d(3, 1),
            d(7, 0),
            d(1, 2),
            d(9, 2),
            d(3, 5),
        ];
        let bulk = View::from_descriptors(ds);
        let mut seq = View::new();
        for x in ds {
            seq.insert(x);
        }
        assert_eq!(bulk, seq);
        assert_eq!(
            bulk.descriptors(),
            reference::from_descriptors(ds).as_slice()
        );
        assert!(bulk.invariants_hold());
        assert!(seq.invariants_hold());
    }

    #[test]
    fn assign_aged_replaces_and_ages() {
        let mut v: View = [d(1, 1)].into_iter().collect();
        let mut scratch = MergeScratch::default();
        v.assign_aged([d(5, 0), d(6, 3)], 1, &mut scratch);
        assert_eq!(v.len(), 2);
        assert_eq!(v.hop_count_of(NodeId::new(5)), Some(1));
        assert_eq!(v.hop_count_of(NodeId::new(6)), Some(4));
        assert!(!v.contains(NodeId::new(1)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn merge_tie_order_puts_self_entries_first() {
        let a: View = [d(10, 3)].into_iter().collect();
        let b: View = [d(20, 3)].into_iter().collect();
        let m = a.merge(&b, None);
        let ids: Vec<u64> = m.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids, vec![10, 20]);
        let m2 = b.merge(&a, None);
        let ids2: Vec<u64> = m2.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids2, vec![20, 10]);
    }

    #[test]
    fn head_and_tail() {
        let v: View = [d(1, 7), d(2, 0), d(3, 4)].into_iter().collect();
        assert_eq!(v.head().unwrap().id(), NodeId::new(2));
        assert_eq!(v.tail().unwrap().id(), NodeId::new(1));
    }

    #[test]
    fn remove_and_contains() {
        let mut v: View = [d(1, 1), d(2, 2)].into_iter().collect();
        assert!(v.contains(NodeId::new(1)));
        let removed = v.remove(NodeId::new(1)).unwrap();
        assert_eq!(removed, d(1, 1));
        assert!(!v.contains(NodeId::new(1)));
        assert_eq!(v.remove(NodeId::new(1)), None);
        assert!(v.invariants_hold());
    }

    #[test]
    fn retain_filters() {
        let mut v: View = [d(1, 1), d(2, 2), d(3, 3)].into_iter().collect();
        v.retain(|x| x.hop_count() < 3);
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId::new(3)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn increase_hop_counts_ages_everything() {
        let mut v: View = [d(1, 0), d(2, 7)].into_iter().collect();
        v.increase_hop_counts();
        assert_eq!(v.hop_count_of(NodeId::new(1)), Some(1));
        assert_eq!(v.hop_count_of(NodeId::new(2)), Some(8));
        assert!(v.invariants_hold());
    }

    #[test]
    fn merge_keeps_lowest_hop_count() {
        let a: View = [d(1, 5), d(2, 3)].into_iter().collect();
        let b: View = [d(1, 2), d(3, 4)].into_iter().collect();
        let m = a.merge(&b, None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.hop_count_of(NodeId::new(1)), Some(2));
        assert_eq!(m.hop_count_of(NodeId::new(2)), Some(3));
        assert_eq!(m.hop_count_of(NodeId::new(3)), Some(4));
        assert!(m.invariants_hold());
    }

    #[test]
    fn merge_excludes_self() {
        let a: View = [d(1, 5)].into_iter().collect();
        let b: View = [d(7, 0), d(2, 1)].into_iter().collect();
        let m = a.merge(&b, Some(NodeId::new(7)));
        assert!(!m.contains(NodeId::new(7)));
        assert_eq!(m.len(), 2);
        assert!(m.invariants_hold());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a: View = [d(1, 1), d(2, 2)].into_iter().collect();
        let m = a.merge(&View::new(), None);
        assert_eq!(m, a);
        let m2 = View::new().merge(&a, None);
        assert_eq!(m2, a);
        assert!(m.invariants_hold());
        assert!(m2.invariants_hold());
    }

    #[test]
    fn merge_from_matches_merge() {
        let received: View = [d(1, 2), d(4, 0), d(2, 9)].into_iter().collect();
        let view: View = [d(2, 3), d(3, 3), d(5, 1)].into_iter().collect();
        let expected = received.merge(&view, Some(NodeId::new(5)));
        let mut target = view.clone();
        let mut scratch = MergeScratch::default();
        target.merge_from(&received, Some(NodeId::new(5)), &mut scratch);
        assert_eq!(target, expected);
        assert!(target.invariants_hold());
    }

    #[test]
    fn slice_absorb_rejects_repeated_excluded_id() {
        // A hop-sorted buffer repeating the receiver's own id is malformed
        // and must be rejected so the general path can handle it — the own
        // descriptor must never survive into the view.
        let mut v: View = [d(9, 1)].into_iter().collect();
        let mut scratch = MergeScratch::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let buf = [d(5, 0), d(5, 1), d(7, 2)];
        let accepted = v.merge_select_from_slice(
            &buf,
            Some(NodeId::new(5)),
            ViewSelection::Head,
            30,
            &mut rng,
            &mut scratch,
        );
        assert!(!accepted, "repeated excluded id must be rejected");
        // View untouched by the failed attempt.
        assert_eq!(v.descriptors(), [d(9, 1)].as_slice());
        // The general path handles the same content correctly.
        let rx = View::from_descriptors(buf);
        v.merge_select_from(
            &rx,
            Some(NodeId::new(5)),
            ViewSelection::Head,
            30,
            &mut rng,
            &mut scratch,
        );
        assert!(!v.contains(NodeId::new(5)));
        assert!(v.contains(NodeId::new(7)));
        assert!(v.contains(NodeId::new(9)));
    }

    #[test]
    fn merge_from_reuses_buffers_across_calls() {
        let mut scratch = MergeScratch::default();
        let mut v = View::new();
        for round in 0..10u64 {
            let received: View = (0..20).map(|i| d(i + round, (i % 5) as u32)).collect();
            v.merge_from(&received, Some(NodeId::new(3)), &mut scratch);
            assert!(v.invariants_hold());
            assert!(!v.contains(NodeId::new(3)));
        }
    }

    #[test]
    fn merge_matches_reference_on_lowered_hops() {
        // Hop lowering perturbs the self-side order; the optimized merge
        // must still match the quadratic reference exactly.
        let a: View = [d(1, 0), d(2, 4), d(3, 5), d(4, 6)].into_iter().collect();
        let b: View = [d(4, 0), d(3, 1), d(9, 2), d(2, 2)].into_iter().collect();
        assert_eq!(
            a.merge(&b, None).descriptors(),
            reference::merge(a.descriptors(), b.descriptors(), None).as_slice()
        );
        assert_eq!(
            b.merge(&a, Some(NodeId::new(2))).descriptors(),
            reference::merge(b.descriptors(), a.descriptors(), Some(NodeId::new(2))).as_slice()
        );
    }

    #[test]
    fn select_head_keeps_freshest() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut v: View = (0..10).map(|i| d(i, i as u32)).collect();
        v.select(ViewSelection::Head, 3, &mut rng);
        let hops: Vec<u32> = v.iter().map(|x| x.hop_count()).collect();
        assert_eq!(hops, vec![0, 1, 2]);
        assert!(v.invariants_hold());
    }

    #[test]
    fn select_tail_keeps_stalest() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut v: View = (0..10).map(|i| d(i, i as u32)).collect();
        v.select(ViewSelection::Tail, 3, &mut rng);
        let hops: Vec<u32> = v.iter().map(|x| x.hop_count()).collect();
        assert_eq!(hops, vec![7, 8, 9]);
        assert!(v.invariants_hold());
    }

    #[test]
    fn select_rand_keeps_subset_in_order() {
        let mut rng = SmallRng::seed_from_u64(42);
        let original: View = (0..20).map(|i| d(i, i as u32)).collect();
        let mut v = original.clone();
        v.select(ViewSelection::Rand, 8, &mut rng);
        assert_eq!(v.len(), 8);
        assert!(v.invariants_hold());
        for x in v.iter() {
            assert!(original.contains(x.id()));
        }
    }

    #[test]
    fn select_no_op_when_small_enough() {
        let mut rng = SmallRng::seed_from_u64(0);
        let original: View = (0..3).map(|i| d(i, i as u32)).collect();
        for policy in [
            ViewSelection::Head,
            ViewSelection::Tail,
            ViewSelection::Rand,
        ] {
            let mut v = original.clone();
            v.select(policy, 3, &mut rng);
            assert_eq!(v, original);
            let mut v = original.clone();
            v.select(policy, 10, &mut rng);
            assert_eq!(v, original);
        }
    }

    #[test]
    fn sample_is_some_iff_non_empty() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(View::new().sample(&mut rng).is_none());
        let v: View = [d(1, 0)].into_iter().collect();
        assert_eq!(v.sample(&mut rng).unwrap().id(), NodeId::new(1));
    }

    #[test]
    fn sample_covers_all_entries() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v: View = (0..5).map(|i| d(i, 0)).collect();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(v.sample(&mut rng).unwrap().id());
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn display_lists_descriptors() {
        let v: View = [d(1, 0), d(2, 3)].into_iter().collect();
        assert_eq!(v.to_string(), "[n1@0 n2@3]");
    }

    #[test]
    fn into_iterator_for_reference() {
        let v: View = [d(1, 0), d(2, 3)].into_iter().collect();
        let count = (&v).into_iter().count();
        assert_eq!(count, 2);
    }
}
