//! Protocol configuration.

use core::fmt;

use crate::{Freshness, PolicyTriple};

/// Error returned when constructing an invalid [`ProtocolConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The view size `c` must be at least 1.
    ZeroViewSize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroViewSize => write!(f, "view size must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Static parameters of a peer sampling protocol instance: the policy triple
/// and the maximal view size `c`.
///
/// The paper fixes `c = 30` for all experiments; [`ProtocolConfig::paper`]
/// reproduces that.
///
/// # Examples
///
/// ```
/// use pss_core::{PolicyTriple, ProtocolConfig};
///
/// let config = ProtocolConfig::paper(PolicyTriple::newscast());
/// assert_eq!(config.view_size(), 30);
/// assert_eq!(config.to_string(), "(rand,head,pushpull) c=30");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolConfig {
    policy: PolicyTriple,
    view_size: usize,
    #[cfg_attr(feature = "serde", serde(default))]
    freshness: Freshness,
}

impl ProtocolConfig {
    /// The view size used throughout the paper's evaluation.
    pub const PAPER_VIEW_SIZE: usize = 30;

    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroViewSize`] if `view_size == 0`.
    pub fn new(policy: PolicyTriple, view_size: usize) -> Result<Self, ConfigError> {
        if view_size == 0 {
            return Err(ConfigError::ZeroViewSize);
        }
        Ok(ProtocolConfig {
            policy,
            view_size,
            freshness: Freshness::HopCount,
        })
    }

    /// The paper's configuration for a given policy: `c = 30`.
    pub fn paper(policy: PolicyTriple) -> Self {
        ProtocolConfig {
            policy,
            view_size: Self::PAPER_VIEW_SIZE,
            freshness: Freshness::HopCount,
        }
    }

    /// Selects the freshness dimension (default [`Freshness::HopCount`],
    /// the generic skeleton's semantics; [`Freshness::Timestamp`] is the
    /// Newscast instantiation's).
    #[must_use]
    pub fn with_freshness(mut self, freshness: Freshness) -> Self {
        self.freshness = freshness;
        self
    }

    /// The policy triple.
    pub fn policy(&self) -> PolicyTriple {
        self.policy
    }

    /// The freshness dimension.
    pub fn freshness(&self) -> Freshness {
        self.freshness
    }

    /// The maximal view size `c`.
    pub fn view_size(&self) -> usize {
        self.view_size
    }
}

impl fmt::Display for ProtocolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} c={}", self.policy, self.view_size)?;
        if self.freshness != Freshness::HopCount {
            write!(f, " freshness={}", self.freshness)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let c = ProtocolConfig::new(PolicyTriple::lpbcast(), 20).unwrap();
        assert_eq!(c.view_size(), 20);
        assert_eq!(c.policy(), PolicyTriple::lpbcast());
    }

    #[test]
    fn zero_view_size_rejected() {
        let err = ProtocolConfig::new(PolicyTriple::lpbcast(), 0).unwrap_err();
        assert_eq!(err, ConfigError::ZeroViewSize);
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn paper_preset() {
        let c = ProtocolConfig::paper(PolicyTriple::newscast());
        assert_eq!(c.view_size(), 30);
    }

    #[test]
    fn display_includes_policy_and_size() {
        let c = ProtocolConfig::new(PolicyTriple::lpbcast(), 5).unwrap();
        assert_eq!(c.to_string(), "(rand,rand,push) c=5");
    }
}
