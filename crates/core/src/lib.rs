//! Generic gossip-based peer sampling framework.
//!
//! This crate implements the protocol framework of *Jelasity, Guerraoui,
//! Kermarrec, van Steen: The Peer Sampling Service — Experimental Evaluation
//! of Unstructured Gossip-Based Implementations* (Middleware 2004).
//!
//! Every node maintains a **partial view**: a hop-count-ordered list of at
//! most `c` [`NodeDescriptor`]s. Periodically, a node selects a peer from its
//! view and they exchange (parts of) their views; each node merges what it
//! received, keeps the freshest descriptor per node, and truncates back to
//! `c` entries. The framework is parameterized along three dimensions, the
//! paper's [`PolicyTriple`]:
//!
//! * [`PeerSelection`] — which view entry to gossip with (`rand`/`head`/`tail`),
//! * [`ViewSelection`] — which entries survive truncation (`rand`/`head`/`tail`),
//! * [`ViewPropagation`] — symmetry of the exchange (`push`/`pull`/`pushpull`).
//!
//! Known protocols are instances: Lpbcast is `(rand,rand,push)` and Newscast
//! is `(rand,head,pushpull)`.
//!
//! The protocol skeleton (the paper's Figure 1) is exposed as a transport-
//! agnostic state machine, [`PeerSamplingNode`]: `initiate` produces a
//! request for a chosen peer, `handle_request` consumes a request and
//! optionally produces a reply, `handle_reply` consumes a reply. A driver —
//! the cycle simulator in `pss-sim`, an event-driven engine, or a real
//! network — moves the messages.
//!
//! The service API of the paper (Section 2: `init()` and `getPeer()`) is the
//! [`PeerSampler`] trait; [`OracleSampler`] is the ideal uniform-random
//! implementation used as the evaluation baseline.
//!
//! # Examples
//!
//! Two nodes bootstrapping off each other and gossiping one exchange. The
//! driver owns the staging [`Arena`] and lends it to every protocol call:
//!
//! ```
//! use pss_core::{
//!     Arena, GossipNode, NodeDescriptor, NodeId, PeerSamplingNode, PolicyTriple, ProtocolConfig,
//! };
//!
//! let config = ProtocolConfig::new(PolicyTriple::newscast(), 30)?;
//! let mut arena = Arena::new();
//! let mut a = PeerSamplingNode::with_seed(NodeId::new(0), config.clone(), 1);
//! let mut b = PeerSamplingNode::with_seed(NodeId::new(1), config, 2);
//! a.init([NodeDescriptor::fresh(b.id())]);
//! b.init([NodeDescriptor::fresh(a.id())]);
//!
//! let exchange = a.initiate(&mut arena).expect("non-empty view");
//! assert_eq!(exchange.peer, b.id());
//! let reply = b
//!     .handle_request(&mut arena, a.id(), exchange.request)
//!     .expect("pushpull replies");
//! a.handle_reply(&mut arena, b.id(), reply);
//! # Ok::<(), pss_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod descriptor;
mod id;
mod message;
mod node;
mod policy;
mod service;

pub mod adversary;
pub mod hs;
pub mod staging;
pub mod view;
pub mod wire;

pub use config::{ConfigError, ProtocolConfig};
pub use descriptor::NodeDescriptor;
pub use id::NodeId;
pub use message::{Exchange, Reply, Request};
pub use node::{GossipNode, PeerSamplingNode};
pub use policy::{
    Freshness, ParsePolicyError, PeerSelection, PolicyTriple, ViewPropagation, ViewSelection,
};
pub use service::{OracleSampler, PeerSampler};
pub use staging::Arena;
pub use view::{MergeScratch, View};
