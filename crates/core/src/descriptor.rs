//! Node descriptors: an address plus a freshness hop count.

use core::fmt;

use crate::NodeId;

/// An entry of a partial view: a node address plus a **hop count**.
///
/// The hop count (called *age* in later literature) starts at 0 when a node
/// inserts its own descriptor into an outgoing message and is incremented by
/// every node that receives it, so it roughly measures how many exchanges the
/// descriptor has traversed since its owner was last heard from directly.
/// Views are ordered by increasing hop count: the *head* of a view is its
/// freshest information, the *tail* its stalest.
///
/// In-process the [`NodeId`] doubles as the node's address. On a real
/// transport a descriptor additionally carries the node's network address —
/// the wire form is `(id, age, address)`, see [`crate::wire`] — which
/// runtimes strip into an id → address book on receipt, so the in-memory
/// view entry stays this compact two-word `Copy` type.
///
/// # Examples
///
/// ```
/// use pss_core::{NodeDescriptor, NodeId};
///
/// let d = NodeDescriptor::fresh(NodeId::new(3));
/// assert_eq!(d.hop_count(), 0);
/// let older = d.aged();
/// assert_eq!(older.hop_count(), 1);
/// assert_eq!(older.id(), d.id());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeDescriptor {
    id: NodeId,
    hop_count: u32,
}

impl NodeDescriptor {
    /// Creates a descriptor with an explicit hop count.
    pub const fn new(id: NodeId, hop_count: u32) -> Self {
        NodeDescriptor { id, hop_count }
    }

    /// Creates a fresh descriptor (hop count 0), as a node does for itself
    /// when sending: "myDescriptor ← (myAddress, 0)".
    pub const fn fresh(id: NodeId) -> Self {
        NodeDescriptor { id, hop_count: 0 }
    }

    /// The node this descriptor points to.
    pub const fn id(self) -> NodeId {
        self.id
    }

    /// The freshness hop count.
    pub const fn hop_count(self) -> u32 {
        self.hop_count
    }

    /// A copy with the hop count incremented (saturating), as applied by
    /// `increaseHopCount` to every received descriptor.
    #[must_use]
    pub const fn aged(self) -> Self {
        NodeDescriptor {
            id: self.id,
            hop_count: self.hop_count.saturating_add(1),
        }
    }

    /// A copy with the age increased by `hops` (saturating): the bulk form
    /// of [`NodeDescriptor::aged`]. `aged_by(0)` is the identity — used by
    /// the timestamp freshness mode, where transfers carry the age through
    /// unchanged ([`crate::Freshness::transfer_age`]).
    #[must_use]
    pub const fn aged_by(self, hops: u32) -> Self {
        NodeDescriptor {
            id: self.id,
            hop_count: self.hop_count.saturating_add(hops),
        }
    }

    /// True if this descriptor is fresher (strictly lower hop count) than
    /// `other`. Only meaningful for descriptors of the same node.
    pub const fn is_fresher_than(self, other: NodeDescriptor) -> bool {
        self.hop_count < other.hop_count
    }
}

impl fmt::Display for NodeDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.hop_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_has_zero_hops() {
        let d = NodeDescriptor::fresh(NodeId::new(1));
        assert_eq!(d.hop_count(), 0);
        assert_eq!(d.id(), NodeId::new(1));
    }

    #[test]
    fn aged_increments() {
        let d = NodeDescriptor::new(NodeId::new(2), 5);
        assert_eq!(d.aged().hop_count(), 6);
        assert_eq!(d.aged().id(), NodeId::new(2));
    }

    #[test]
    fn aged_saturates_at_max() {
        let d = NodeDescriptor::new(NodeId::new(2), u32::MAX);
        assert_eq!(d.aged().hop_count(), u32::MAX);
    }

    #[test]
    fn freshness_comparison() {
        let a = NodeDescriptor::new(NodeId::new(1), 2);
        let b = NodeDescriptor::new(NodeId::new(1), 3);
        assert!(a.is_fresher_than(b));
        assert!(!b.is_fresher_than(a));
        assert!(!a.is_fresher_than(a));
    }

    #[test]
    fn display_shows_id_and_hops() {
        let d = NodeDescriptor::new(NodeId::new(4), 7);
        assert_eq!(d.to_string(), "n4@7");
    }
}
