//! The peer sampling service API (paper, Section 2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{GossipNode, NodeDescriptor, NodeId, PeerSamplingNode};

/// The peer sampling service: the paper's two-method API.
///
/// * `init` — "Initializes the service on a given node if this has not been
///   done before."
/// * `get_peer` — "Returns a peer address if the group contains more than
///   one node. The returned address is a sample drawn from the group."
///
/// Applications needing several peers call `get_peer` repeatedly. The
/// statistical quality of the sample is implementation-dependent — measuring
/// it for gossip-based implementations is the subject of the paper.
pub trait PeerSampler {
    /// Initializes the service with bootstrap contacts (idempotent use is
    /// the caller's choice; re-initialization resets the state).
    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>);

    /// Draws one peer from the group, or `None` if no peer is known.
    fn get_peer(&mut self) -> Option<NodeId>;
}

impl PeerSampler for PeerSamplingNode {
    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        GossipNode::init(self, seeds);
    }

    fn get_peer(&mut self) -> Option<NodeId> {
        self.sample_peer()
    }
}

/// The ideal peer sampling service: independent uniform random samples over
/// full group membership.
///
/// This is the baseline "which all the theoretical work implicitly assumes"
/// and against which the gossip implementations are compared. It requires
/// global knowledge (a full membership list), which is exactly what makes it
/// unscalable in practice — but in simulation it is the gold standard.
///
/// # Examples
///
/// ```
/// use pss_core::{NodeId, OracleSampler, PeerSampler};
///
/// let mut oracle = OracleSampler::new(NodeId::new(0), 42);
/// oracle.set_members((0..10).map(NodeId::new));
/// let peer = oracle.get_peer().expect("nine candidates");
/// assert_ne!(peer, NodeId::new(0));
/// ```
#[derive(Debug, Clone)]
pub struct OracleSampler {
    own_id: NodeId,
    members: Vec<NodeId>,
    rng: SmallRng,
}

impl OracleSampler {
    /// Creates an oracle for the node `own_id` with a deterministic seed.
    pub fn new(own_id: NodeId, seed: u64) -> Self {
        OracleSampler {
            own_id,
            members: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Replaces the full membership list. The owner may be included; it is
    /// never returned by [`PeerSampler::get_peer`].
    pub fn set_members(&mut self, members: impl IntoIterator<Item = NodeId>) {
        self.members = members.into_iter().filter(|&m| m != self.own_id).collect();
    }

    /// Adds one member (ignored for self).
    pub fn add_member(&mut self, member: NodeId) {
        if member != self.own_id && !self.members.contains(&member) {
            self.members.push(member);
        }
    }

    /// Removes one member; returns true if it was present.
    pub fn remove_member(&mut self, member: NodeId) -> bool {
        if let Some(pos) = self.members.iter().position(|&m| m == member) {
            self.members.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of known peers (excluding self).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }
}

impl PeerSampler for OracleSampler {
    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        self.members = seeds
            .map(|d| d.id())
            .filter(|&m| m != self.own_id)
            .collect();
        self.members.sort_unstable();
        self.members.dedup();
    }

    fn get_peer(&mut self) -> Option<NodeId> {
        if self.members.is_empty() {
            None
        } else {
            Some(self.members[self.rng.random_range(0..self.members.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PolicyTriple, ProtocolConfig};
    use std::collections::HashMap;

    #[test]
    fn oracle_never_returns_self() {
        let mut o = OracleSampler::new(NodeId::new(3), 1);
        o.set_members((0..5).map(NodeId::new));
        assert_eq!(o.member_count(), 4);
        for _ in 0..100 {
            assert_ne!(o.get_peer().unwrap(), NodeId::new(3));
        }
    }

    #[test]
    fn oracle_empty_returns_none() {
        let mut o = OracleSampler::new(NodeId::new(0), 1);
        assert!(o.get_peer().is_none());
        o.set_members([NodeId::new(0)]); // only self
        assert!(o.get_peer().is_none());
    }

    #[test]
    fn oracle_is_approximately_uniform() {
        let mut o = OracleSampler::new(NodeId::new(100), 7);
        o.set_members((0..10).map(NodeId::new));
        let mut counts: HashMap<NodeId, u32> = HashMap::new();
        let draws = 10_000;
        for _ in 0..draws {
            *counts.entry(o.get_peer().unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 10);
        let expected = draws as f64 / 10.0;
        for (&id, &count) in &counts {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "{id} drawn {count} times, expected ~{expected}");
        }
    }

    #[test]
    fn oracle_membership_updates() {
        let mut o = OracleSampler::new(NodeId::new(0), 1);
        o.add_member(NodeId::new(1));
        o.add_member(NodeId::new(1)); // duplicate ignored
        o.add_member(NodeId::new(0)); // self ignored
        assert_eq!(o.member_count(), 1);
        assert!(o.remove_member(NodeId::new(1)));
        assert!(!o.remove_member(NodeId::new(1)));
        assert_eq!(o.member_count(), 0);
    }

    #[test]
    fn oracle_init_via_trait() {
        let mut o = OracleSampler::new(NodeId::new(0), 1);
        PeerSampler::init(
            &mut o,
            &mut [1u64, 2, 2, 0]
                .into_iter()
                .map(|i| NodeDescriptor::fresh(NodeId::new(i))),
        );
        assert_eq!(o.member_count(), 2);
    }

    #[test]
    fn gossip_node_implements_sampler() {
        let config = ProtocolConfig::paper(PolicyTriple::newscast());
        let mut n = PeerSamplingNode::with_seed(NodeId::new(0), config, 5);
        assert!(n.get_peer().is_none());
        PeerSampler::init(
            &mut n,
            &mut [1u64, 2]
                .into_iter()
                .map(|i| NodeDescriptor::fresh(NodeId::new(i))),
        );
        let p = n.get_peer().unwrap();
        assert!(p == NodeId::new(1) || p == NodeId::new(2));
    }

    #[test]
    fn samplers_are_object_safe() {
        let config = ProtocolConfig::paper(PolicyTriple::newscast());
        let mut samplers: Vec<Box<dyn PeerSampler>> = vec![
            Box::new(OracleSampler::new(NodeId::new(0), 1)),
            Box::new(PeerSamplingNode::with_seed(NodeId::new(0), config, 2)),
        ];
        for s in &mut samplers {
            s.init(&mut [NodeDescriptor::fresh(NodeId::new(9))].into_iter());
            assert_eq!(s.get_peer(), Some(NodeId::new(9)));
        }
    }
}
