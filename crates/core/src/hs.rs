//! **Extension:** the healer/swapper (H, S) protocol generalization.
//!
//! The Middleware 2004 paper concludes that "in many cases, combining
//! different settings will be necessary". The authors' follow-up work
//! (*Gossip-based Peer Sampling*, ACM TOCS 2007) did exactly that with two
//! integer parameters applied during view selection:
//!
//! * **H (healer)** — after merging, remove up to `H` of the *oldest*
//!   descriptors (but never shrink below `c`). Large `H` removes dead links
//!   aggressively, like `head` view selection.
//! * **S (swapper)** — then remove up to `S` of the descriptors that were
//!   *just sent* to the exchange partner (a swap: what you gave away you
//!   drop). Large `S` minimizes duplication of descriptors, like a shuffle
//!   (Cyclon-style).
//! * Any remaining surplus is removed at random.
//!
//! Unlike the 2004 skeleton, the exchanged buffer is not the whole view but
//! the node's own fresh descriptor plus a random half-view sample biased
//! away from the `H` oldest entries, and descriptor ages count *cycles*
//! (incremented once per own cycle) rather than network hops.
//!
//! [`HsNode`] implements [`GossipNode`], so it runs under the same simulator
//! drivers as the 2004 protocols. This module is an opt-in extension: none
//! of the paper-reproduction experiments route through it.

use core::fmt;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::staging::Arena;
use crate::{Exchange, GossipNode, NodeDescriptor, NodeId, Reply, Request, View};

/// Peer selection for the H&S protocol: TOCS 2007 considers uniform random
/// and oldest-entry selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HsPeerSelection {
    /// Uniform random view entry.
    Rand,
    /// The entry with the highest age (the paper's `tail`).
    Oldest,
}

/// Error returned for invalid H&S parameter combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsConfigError {
    /// `view_size` must be at least 2 (the exchange sends half a view).
    ViewSizeTooSmall,
    /// `healer + swapper` must not exceed `view_size / 2`.
    ParametersExceedHalfView,
}

impl fmt::Display for HsConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HsConfigError::ViewSizeTooSmall => write!(f, "view size must be at least 2"),
            HsConfigError::ParametersExceedHalfView => {
                write!(f, "healer + swapper must not exceed half the view size")
            }
        }
    }
}

impl std::error::Error for HsConfigError {}

/// Parameters of the H&S generalization.
///
/// # Examples
///
/// ```
/// use pss_core::hs::{HsConfig, HsPeerSelection};
///
/// // The TOCS'07 "healer" corner: H = c/2, S = 0.
/// let config = HsConfig::new(30, 15, 0, HsPeerSelection::Rand)?;
/// assert_eq!(config.healer(), 15);
/// # Ok::<(), pss_core::hs::HsConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HsConfig {
    view_size: usize,
    healer: usize,
    swapper: usize,
    peer_selection: HsPeerSelection,
}

impl HsConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HsConfigError::ViewSizeTooSmall`] if `view_size < 2`, and
    /// [`HsConfigError::ParametersExceedHalfView`] if
    /// `healer + swapper > view_size / 2` (the TOCS 2007 constraint).
    pub fn new(
        view_size: usize,
        healer: usize,
        swapper: usize,
        peer_selection: HsPeerSelection,
    ) -> Result<Self, HsConfigError> {
        if view_size < 2 {
            return Err(HsConfigError::ViewSizeTooSmall);
        }
        if healer + swapper > view_size / 2 {
            return Err(HsConfigError::ParametersExceedHalfView);
        }
        Ok(HsConfig {
            view_size,
            healer,
            swapper,
            peer_selection,
        })
    }

    /// The maximal view size `c`.
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// The healer parameter `H`.
    pub fn healer(&self) -> usize {
        self.healer
    }

    /// The swapper parameter `S`.
    pub fn swapper(&self) -> usize {
        self.swapper
    }

    /// The peer selection policy.
    pub fn peer_selection(&self) -> HsPeerSelection {
        self.peer_selection
    }

    /// Number of view descriptors shipped per message: `c/2 − 1` plus the
    /// sender's own fresh descriptor.
    pub fn buffer_size(&self) -> usize {
        self.view_size / 2
    }
}

/// A node running the H&S-generalized push-pull membership protocol.
#[derive(Debug, Clone)]
pub struct HsNode {
    id: NodeId,
    config: HsConfig,
    view: View,
    /// Ids sent to the partner in the exchange currently in flight; the
    /// swapper removes up to `S` of them on merge.
    sent: Vec<NodeId>,
    rng: SmallRng,
}

impl HsNode {
    /// Creates a node with a deterministic RNG seed.
    pub fn with_seed(id: NodeId, config: HsConfig, seed: u64) -> Self {
        HsNode {
            id,
            config,
            view: View::new(),
            sent: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Convenience [`GossipNode::init`] accepting any descriptor collection.
    pub fn init(&mut self, seeds: impl IntoIterator<Item = NodeDescriptor>) {
        GossipNode::init(self, &mut seeds.into_iter());
    }

    /// The node's configuration.
    pub fn config(&self) -> &HsConfig {
        &self.config
    }

    /// Builds the outgoing buffer: own fresh descriptor plus up to
    /// `c/2 − 1` random view entries, preferring entries that are not among
    /// the `H` oldest. Records what was sent for the swapper step.
    fn build_buffer(&mut self, arena: &mut Arena) -> Vec<NodeDescriptor> {
        let want = self.config.buffer_size().saturating_sub(1);
        let len = self.view.len();
        // The H oldest entries sit at the tail of the age-ordered view.
        let old_start = len.saturating_sub(self.config.healer);
        let mut young: Vec<NodeDescriptor> = self.view.descriptors()[..old_start].to_vec();
        young.shuffle(&mut self.rng);
        let mut chosen: Vec<NodeDescriptor> = young.into_iter().take(want).collect();
        if chosen.len() < want {
            // Not enough young entries: fill from the old ones.
            let mut old: Vec<NodeDescriptor> = self.view.descriptors()[old_start..].to_vec();
            old.shuffle(&mut self.rng);
            chosen.extend(old.into_iter().take(want - chosen.len()));
        }
        self.sent = chosen.iter().map(|d| d.id()).collect();
        let mut buffer = arena.pool_take();
        buffer.reserve(chosen.len() + 1);
        buffer.push(NodeDescriptor::fresh(self.id));
        buffer.extend(chosen);
        buffer
    }

    /// The TOCS 2007 `view.select(c, H, S, buffer)` step.
    fn select(&mut self, arena: &mut Arena, received: Vec<NodeDescriptor>) {
        arena
            .rx_view
            .assign_aged(received.iter().copied(), 1, &mut arena.scratch);
        self.view
            .merge_from(&arena.rx_view, Some(self.id), &mut arena.scratch);
        // Recycle the spent wire buffer for future outgoing messages.
        arena.pool_put(received);
        let merged = &mut self.view;
        let c = self.config.view_size();

        // Healer: drop min(H, surplus) oldest entries.
        let surplus = merged.len().saturating_sub(c);
        let heal = self.config.healer.min(surplus);
        for _ in 0..heal {
            let oldest = merged
                .tail()
                .map(|d| d.id())
                .expect("nonempty under surplus");
            merged.remove(oldest);
        }

        // Swapper: drop min(S, surplus) of the items just sent.
        let surplus = merged.len().saturating_sub(c);
        let mut swaps = self.config.swapper.min(surplus);
        let sent = std::mem::take(&mut self.sent);
        for id in sent {
            if swaps == 0 {
                break;
            }
            if merged.remove(id).is_some() {
                swaps -= 1;
            }
        }

        // Random removals for any remaining surplus.
        while merged.len() > c {
            let idx = self.rng.random_range(0..merged.len());
            let id = merged.descriptors()[idx].id();
            merged.remove(id);
        }
        debug_assert!(self.view.invariants_hold());
    }
}

impl GossipNode for HsNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view(&self) -> &View {
        &self.view
    }

    fn init(&mut self, seeds: &mut dyn Iterator<Item = NodeDescriptor>) {
        self.view = View::from_descriptors(seeds.filter(|d| d.id() != self.id));
        let c = self.config.view_size();
        while self.view.len() > c {
            let idx = self.rng.random_range(0..self.view.len());
            let id = self.view.descriptors()[idx].id();
            self.view.remove(id);
        }
    }

    fn initiate_filtered(
        &mut self,
        arena: &mut Arena,
        eligible: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<Exchange> {
        // Ages advance once per own cycle, whether or not the exchange
        // succeeds — they count cycles, not hops, in the H&S protocol.
        self.view.increase_hop_counts();
        let peer = match self.config.peer_selection {
            HsPeerSelection::Rand => self.view.sample_filtered(&mut self.rng, eligible),
            HsPeerSelection::Oldest => {
                let mut last = None;
                for id in self.view.ids() {
                    if eligible(id) {
                        last = Some(id);
                    }
                }
                last
            }
        }?;
        let descriptors = self.build_buffer(arena);
        Some(Exchange {
            peer,
            request: Request {
                descriptors,
                wants_reply: true,
            },
        })
    }

    fn handle_request(
        &mut self,
        arena: &mut Arena,
        _from: NodeId,
        request: Request,
    ) -> Option<Reply> {
        let reply = Reply {
            descriptors: self.build_buffer(arena),
        };
        self.select(arena, request.descriptors);
        Some(reply)
    }

    fn handle_reply(&mut self, arena: &mut Arena, _from: NodeId, reply: Reply) {
        self.select(arena, reply.descriptors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(c: usize, h: usize, s: usize) -> HsConfig {
        HsConfig::new(c, h, s, HsPeerSelection::Rand).unwrap()
    }

    fn seeded(id: u64, cfg: HsConfig, peers: &[(u64, u32)]) -> HsNode {
        let mut n = HsNode::with_seed(NodeId::new(id), cfg, id * 31 + 5);
        n.init(
            peers
                .iter()
                .map(|&(i, h)| NodeDescriptor::new(NodeId::new(i), h)),
        );
        n
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            HsConfig::new(1, 0, 0, HsPeerSelection::Rand),
            Err(HsConfigError::ViewSizeTooSmall)
        );
        assert_eq!(
            HsConfig::new(10, 4, 2, HsPeerSelection::Rand),
            Err(HsConfigError::ParametersExceedHalfView)
        );
        assert!(HsConfig::new(10, 3, 2, HsPeerSelection::Rand).is_ok());
        assert!(HsConfigError::ViewSizeTooSmall
            .to_string()
            .contains("at least 2"));
        assert!(HsConfigError::ParametersExceedHalfView
            .to_string()
            .contains("half"));
    }

    #[test]
    fn config_accessors() {
        let c = HsConfig::new(30, 8, 4, HsPeerSelection::Oldest).unwrap();
        assert_eq!(c.view_size(), 30);
        assert_eq!(c.healer(), 8);
        assert_eq!(c.swapper(), 4);
        assert_eq!(c.peer_selection(), HsPeerSelection::Oldest);
        assert_eq!(c.buffer_size(), 15);
    }

    #[test]
    fn buffer_has_own_fresh_descriptor_first() {
        let mut arena = Arena::new();
        let mut n = seeded(0, config(10, 1, 1), &[(1, 1), (2, 2), (3, 3)]);
        let ex = n.initiate(&mut arena).unwrap();
        assert_eq!(
            ex.request.descriptors[0],
            NodeDescriptor::fresh(NodeId::new(0))
        );
        assert!(ex.request.wants_reply);
        // c/2 = 5 total max: self + up to 4 entries, but view has only 3.
        assert!(ex.request.len() <= 5);
    }

    #[test]
    fn initiate_ages_view() {
        let mut arena = Arena::new();
        let mut n = seeded(0, config(10, 1, 1), &[(1, 1)]);
        let _ = n.initiate(&mut arena).unwrap();
        assert_eq!(n.view().hop_count_of(NodeId::new(1)), Some(2));
    }

    #[test]
    fn initiate_on_empty_view_is_none() {
        let mut arena = Arena::new();
        let mut n = HsNode::with_seed(NodeId::new(0), config(10, 1, 1), 3);
        assert!(n.initiate(&mut arena).is_none());
    }

    #[test]
    fn oldest_peer_selection() {
        let mut arena = Arena::new();
        let cfg = HsConfig::new(10, 1, 1, HsPeerSelection::Oldest).unwrap();
        let mut n = seeded(0, cfg, &[(1, 5), (2, 9), (3, 1)]);
        let ex = n.initiate(&mut arena).unwrap();
        assert_eq!(ex.peer, NodeId::new(2));
    }

    #[test]
    fn exchange_keeps_views_within_capacity() {
        let mut arena = Arena::new();
        let cfg = config(6, 1, 1);
        let mut a = seeded(0, cfg, &[(1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6)]);
        let mut b = seeded(1, cfg, &[(0, 1), (7, 2), (8, 3), (9, 4), (10, 5), (11, 6)]);
        let ex = a.initiate(&mut arena).unwrap();
        let reply = b.handle_request(&mut arena, a.id(), ex.request).unwrap();
        a.handle_reply(&mut arena, b.id(), reply);
        assert!(a.view().len() <= 6);
        assert!(b.view().len() <= 6);
        assert!(a.view().invariants_hold());
        assert!(b.view().invariants_hold());
    }

    #[test]
    fn healer_removes_oldest_on_surplus() {
        let mut arena = Arena::new();
        // View at capacity with one ancient entry; merging new content must
        // push the ancient entry out when H >= 1.
        let cfg = config(4, 2, 0);
        let mut n = seeded(0, cfg, &[(1, 100), (2, 1), (3, 1), (4, 1)]);
        n.handle_reply(
            &mut arena,
            NodeId::new(2),
            Reply {
                descriptors: vec![
                    NodeDescriptor::fresh(NodeId::new(5)),
                    NodeDescriptor::fresh(NodeId::new(6)),
                ],
            },
        );
        assert!(n.view().len() <= 4);
        assert!(
            !n.view().contains(NodeId::new(1)),
            "ancient entry should be healed away: {}",
            n.view()
        );
    }

    #[test]
    fn swapper_removes_sent_entries_on_surplus() {
        let mut arena = Arena::new();
        let cfg = config(4, 0, 2);
        let mut n = seeded(0, cfg, &[(1, 1), (2, 2), (3, 3), (4, 4)]);
        let ex = n.initiate(&mut arena).unwrap();
        let sent_ids: Vec<NodeId> = ex.request.descriptors[1..].iter().map(|d| d.id()).collect();
        n.handle_reply(
            &mut arena,
            ex.peer,
            Reply {
                descriptors: vec![
                    NodeDescriptor::fresh(NodeId::new(7)),
                    NodeDescriptor::fresh(NodeId::new(8)),
                ],
            },
        );
        assert!(n.view().len() <= 4);
        // At least one sent id must be gone (surplus was 2, S = 2).
        let still_there = sent_ids.iter().filter(|&&id| n.view().contains(id)).count();
        assert!(
            still_there < sent_ids.len(),
            "swapper should drop sent entries: sent={sent_ids:?} view={}",
            n.view()
        );
    }

    #[test]
    fn own_descriptor_never_stored() {
        let mut arena = Arena::new();
        let mut n = seeded(0, config(10, 1, 1), &[(1, 1)]);
        n.handle_reply(
            &mut arena,
            NodeId::new(1),
            Reply {
                descriptors: vec![NodeDescriptor::new(NodeId::new(0), 3)],
            },
        );
        assert!(!n.view().contains(NodeId::new(0)));
    }

    #[test]
    fn init_truncates_to_capacity() {
        let n = seeded(
            0,
            config(4, 1, 1),
            &[(1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6)],
        );
        assert_eq!(n.view().len(), 4);
    }

    #[test]
    fn request_reply_cycle_spreads_fresh_descriptors() {
        let mut arena = Arena::new();
        let cfg = config(10, 2, 2);
        let mut a = seeded(0, cfg, &[(1, 3)]);
        let mut b = seeded(1, cfg, &[(2, 3)]);
        let ex = a.initiate(&mut arena).unwrap();
        assert_eq!(ex.peer, NodeId::new(1));
        let reply = b.handle_request(&mut arena, a.id(), ex.request).unwrap();
        a.handle_reply(&mut arena, b.id(), reply);
        // b learned a (fresh), a learned b and/or node 2.
        assert!(b.view().contains(NodeId::new(0)));
        assert!(a.view().contains(NodeId::new(1)) || a.view().contains(NodeId::new(2)));
    }
}
