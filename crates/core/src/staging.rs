//! Per-thread staging arena shared by every protocol node implementation.
//!
//! The receive side of an exchange needs a handful of scratch buffers: an
//! aged copy of the wire content, a staging [`View`] for the general merge
//! fallback, a [`MergeScratch`], and a pool of recycled message buffers.
//! These are deliberately **per worker thread** rather than per node: a
//! simulation drives many thousands of nodes from one thread, and per-node
//! buffers would add kilobytes of cold memory to every exchange (measurably
//! slower at N = 10⁴ than the allocations they save). One shared arena
//! stays hot in cache and keeps the steady state allocation-free.
//!
//! The same reasoning extends to the sharded multi-threaded engine: each
//! worker thread owns its own arena (via `thread_local`), so recycling is
//! contention-free by construction, and — because buffer *contents* never
//! leak between exchanges (every use starts with `clear()`) — arena reuse
//! can never affect protocol output. Determinism therefore holds regardless
//! of which worker thread processes which shard. Workers that want to avoid
//! first-touch allocation jitter can call [`prewarm`] before a batch.

use crate::view::MergeScratch;
use crate::{NodeDescriptor, View};

/// Upper bound on pooled message buffers per thread; beyond this, spent
/// buffers are simply dropped. Exchanges hold at most two buffers in flight
/// per node being driven, so a small pool suffices.
pub const POOL_LIMIT: usize = 8;

/// The per-thread staging buffers (see the module docs).
#[derive(Default)]
pub(crate) struct Arena {
    /// Aged copy of the received wire buffer.
    pub(crate) rx_buf: Vec<NodeDescriptor>,
    /// Staging view for the (rare) general fallback merge path.
    pub(crate) rx_view: View,
    /// Merge scratch shared by all merge/select calls on this thread.
    pub(crate) scratch: MergeScratch,
    /// Recycled message buffers: absorbed request/reply vectors are parked
    /// here and reused when building outgoing messages, keeping message
    /// construction allocation-free in steady state.
    pool: Vec<Vec<NodeDescriptor>>,
}

impl Arena {
    /// Takes a recycled message buffer (empty, capacity retained), or a
    /// fresh one if the pool is dry.
    pub(crate) fn pool_take(&mut self) -> Vec<NodeDescriptor> {
        self.pool.pop().unwrap_or_default()
    }

    /// Parks a spent message buffer for reuse; drops it if the pool is
    /// full. The buffer is cleared here, so takers never see stale content.
    pub(crate) fn pool_put(&mut self, mut buffer: Vec<NodeDescriptor>) {
        if self.pool.len() < POOL_LIMIT {
            buffer.clear();
            self.pool.push(buffer);
        }
    }
}

std::thread_local! {
    static ARENA: core::cell::RefCell<Arena> = core::cell::RefCell::new(Arena::default());
}

/// Runs `f` with this thread's staging arena.
///
/// # Panics
///
/// Panics on re-entrant use (an absorb cannot trigger another absorb on the
/// same thread; no protocol path does).
pub(crate) fn with_arena<R>(f: impl FnOnce(&mut Arena) -> R) -> R {
    ARENA.with(|arena| f(&mut arena.borrow_mut()))
}

/// Pre-sizes this thread's arena: fills the message-buffer pool with
/// `buffers` buffers of `descriptor_capacity` each and reserves the wire
/// staging buffer. Purely an allocation warm-up for worker threads — has no
/// observable effect on protocol output.
pub fn prewarm(buffers: usize, descriptor_capacity: usize) {
    with_arena(|arena| {
        arena.rx_buf.reserve(descriptor_capacity);
        while arena.pool.len() < buffers.min(POOL_LIMIT) {
            arena.pool.push(Vec::with_capacity(descriptor_capacity));
        }
    });
}

/// Number of message buffers currently pooled on this thread (diagnostic).
pub fn pooled_buffers() -> usize {
    with_arena(|arena| arena.pool.len())
}

/// Takes a recycled message buffer from this thread's pool (empty, capacity
/// retained), or a fresh one if the pool is dry — the public entry point for
/// external drivers (network runtimes, event engines) that build
/// [`crate::Request`]/[`crate::Reply`] payloads outside a protocol node.
pub fn take_buffer() -> Vec<NodeDescriptor> {
    with_arena(|arena| arena.pool_take())
}

/// Returns a spent message buffer to this thread's pool (cleared; dropped
/// if the pool is full). The inverse of [`take_buffer`].
pub fn put_buffer(buffer: Vec<NodeDescriptor>) {
    with_arena(|arena| arena.pool_put(buffer));
}

/// Pops one pooled buffer, moving its capacity out of the thread-local pool
/// into caller-owned storage. Drivers whose worker threads are short-lived
/// (scoped per phase) use this to rescue recycled capacity before the
/// thread — and its pool — is dropped.
pub fn reclaim_buffer() -> Option<Vec<NodeDescriptor>> {
    with_arena(|arena| arena.pool.pop())
}

/// Tops up the thread pool from caller-owned storage: moves one buffer out
/// of `reserve` if (and only if) the pool is currently empty, so the next
/// [`take_buffer`]/`pool_take` hits recycled capacity instead of the
/// allocator. The complement of [`reclaim_buffer`].
pub fn refill_from(reserve: &mut Vec<Vec<NodeDescriptor>>) {
    with_arena(|arena| {
        if arena.pool.is_empty() {
            if let Some(buffer) = reserve.pop() {
                arena.pool.push(buffer);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_up_to_limit() {
        with_arena(|arena| arena.pool.clear());
        assert_eq!(pooled_buffers(), 0);
        with_arena(|arena| {
            for _ in 0..POOL_LIMIT + 3 {
                arena.pool_put(Vec::with_capacity(4));
            }
        });
        assert_eq!(pooled_buffers(), POOL_LIMIT);
        let buf = with_arena(|arena| arena.pool_take());
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 4);
        assert_eq!(pooled_buffers(), POOL_LIMIT - 1);
    }

    #[test]
    fn pool_put_clears_content() {
        with_arena(|arena| arena.pool.clear());
        with_arena(|arena| {
            arena.pool_put(vec![NodeDescriptor::fresh(crate::NodeId::new(7))]);
        });
        let buf = with_arena(|arena| arena.pool_take());
        assert!(buf.is_empty(), "recycled buffers must never leak content");
    }

    #[test]
    fn take_put_reclaim_refill_roundtrip() {
        with_arena(|arena| arena.pool.clear());
        // take on a dry pool allocates fresh.
        let buf = take_buffer();
        assert!(buf.is_empty());
        put_buffer({
            let mut b = buf;
            b.reserve(16);
            b.push(NodeDescriptor::fresh(crate::NodeId::new(1)));
            b
        });
        assert_eq!(pooled_buffers(), 1);
        // reclaim moves the capacity out (cleared by put).
        let rescued = reclaim_buffer().expect("one pooled");
        assert!(rescued.is_empty());
        assert!(rescued.capacity() >= 16);
        assert_eq!(pooled_buffers(), 0);
        assert!(reclaim_buffer().is_none());
        // refill only feeds an empty pool, one buffer at a time.
        let mut reserve = vec![rescued, Vec::with_capacity(4)];
        refill_from(&mut reserve);
        assert_eq!(pooled_buffers(), 1);
        assert_eq!(reserve.len(), 1);
        refill_from(&mut reserve);
        assert_eq!(pooled_buffers(), 1, "non-empty pool must not be refilled");
        assert_eq!(reserve.len(), 1);
    }

    #[test]
    fn prewarm_fills_pool() {
        with_arena(|arena| arena.pool.clear());
        prewarm(4, 31);
        assert_eq!(pooled_buffers(), 4);
        // Idempotent: never exceeds the requested count or the limit.
        prewarm(4, 31);
        assert_eq!(pooled_buffers(), 4);
        prewarm(100, 31);
        assert_eq!(pooled_buffers(), POOL_LIMIT);
    }
}
