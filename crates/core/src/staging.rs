//! Explicitly-owned staging arena shared by every protocol node
//! implementation.
//!
//! The receive side of an exchange needs a handful of scratch buffers: an
//! aged copy of the wire content, a staging [`View`] for the general merge
//! fallback, a [`MergeScratch`], and a pool of recycled message buffers.
//! These are deliberately **per driver** rather than per node: a simulation
//! drives many thousands of nodes from one arena, and per-node buffers would
//! add kilobytes of cold memory to every exchange (measurably slower at
//! N = 10⁴ than the allocations they save). One shared arena stays hot in
//! cache and keeps the steady state allocation-free.
//!
//! Ownership is explicit: the driver (a simulation shard, an event shard, a
//! network runtime) constructs an [`Arena`] and passes `&mut Arena` into
//! every [`crate::GossipNode`] call. Earlier revisions hid the arena in a
//! `thread_local!`, which coupled recycling to accidental thread identity;
//! with shard-owned arenas, recycled capacity stays with the shard that will
//! reuse it no matter which worker thread runs the shard, and the borrow
//! checker — not a `RefCell` — enforces exclusive access. Because buffer
//! *contents* never leak between exchanges (every use starts with
//! `clear()`), arena reuse can never affect protocol output; determinism
//! holds regardless of which arena processes which exchange.

use crate::view::MergeScratch;
use crate::{NodeDescriptor, View};

/// Default upper bound on pooled message buffers per arena; beyond this,
/// spent buffers are simply dropped. Cycle-driven exchanges hold at most two
/// buffers in flight per node being driven, so a small pool suffices; event
/// drivers with many in-flight messages raise the limit via
/// [`Arena::with_pool_limit`].
pub const POOL_LIMIT: usize = 8;

/// The staging buffers every protocol node call works out of (see the
/// module docs). One per driver; passed explicitly as `&mut Arena`.
pub struct Arena {
    /// Aged copy of the received wire buffer.
    pub(crate) rx_buf: Vec<NodeDescriptor>,
    /// Staging view for the (rare) general fallback merge path.
    pub(crate) rx_view: View,
    /// Merge scratch shared by all merge/select calls through this arena.
    pub(crate) scratch: MergeScratch,
    /// Recycled message buffers: absorbed request/reply vectors are parked
    /// here and reused when building outgoing messages, keeping message
    /// construction allocation-free in steady state.
    pool: Vec<Vec<NodeDescriptor>>,
    /// Upper bound on `pool.len()`.
    pool_limit: usize,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// Creates an empty arena with the default message-buffer pool limit
    /// ([`POOL_LIMIT`]).
    pub fn new() -> Self {
        Arena::with_pool_limit(POOL_LIMIT)
    }

    /// Creates an empty arena that pools up to `pool_limit` message
    /// buffers. Event-driven shards park one payload per in-flight message,
    /// so they size the pool to their expected message backlog.
    pub fn with_pool_limit(pool_limit: usize) -> Self {
        Arena {
            rx_buf: Vec::new(),
            rx_view: View::default(),
            scratch: MergeScratch::default(),
            pool: Vec::new(),
            pool_limit,
        }
    }

    /// The configured message-buffer pool limit.
    pub fn pool_limit(&self) -> usize {
        self.pool_limit
    }

    /// Pre-sizes the arena: fills the message-buffer pool with `buffers`
    /// buffers of `descriptor_capacity` each and reserves the wire staging
    /// buffer. Purely an allocation warm-up (drivers call it so first-touch
    /// faulting happens on the owning worker) — it has no observable effect
    /// on protocol output.
    pub fn prewarm(&mut self, buffers: usize, descriptor_capacity: usize) {
        self.rx_buf.reserve(descriptor_capacity);
        while self.pool.len() < buffers.min(self.pool_limit) {
            self.pool.push(Vec::with_capacity(descriptor_capacity));
        }
    }

    /// Number of message buffers currently pooled (diagnostic).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Takes a recycled message buffer (empty, capacity retained), or a
    /// fresh one if the pool is dry. Drivers use this to build
    /// [`crate::Request`]/[`crate::Reply`] payloads outside a protocol
    /// node; node implementations use it for their outgoing buffers.
    pub fn take_buffer(&mut self) -> Vec<NodeDescriptor> {
        self.pool.pop().unwrap_or_default()
    }

    /// Parks a spent message buffer for reuse; drops it if the pool is
    /// full. The buffer is cleared here, so takers never see stale content.
    /// The inverse of [`Arena::take_buffer`].
    pub fn put_buffer(&mut self, mut buffer: Vec<NodeDescriptor>) {
        if self.pool.len() < self.pool_limit {
            buffer.clear();
            self.pool.push(buffer);
        }
    }

    /// Legacy internal alias of [`Arena::take_buffer`].
    pub(crate) fn pool_take(&mut self) -> Vec<NodeDescriptor> {
        self.take_buffer()
    }

    /// Legacy internal alias of [`Arena::put_buffer`].
    pub(crate) fn pool_put(&mut self, buffer: Vec<NodeDescriptor>) {
        self.put_buffer(buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_up_to_limit() {
        let mut arena = Arena::new();
        assert_eq!(arena.pooled_buffers(), 0);
        for _ in 0..POOL_LIMIT + 3 {
            arena.put_buffer(Vec::with_capacity(4));
        }
        assert_eq!(arena.pooled_buffers(), POOL_LIMIT);
        let buf = arena.take_buffer();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 4);
        assert_eq!(arena.pooled_buffers(), POOL_LIMIT - 1);
    }

    #[test]
    fn pool_put_clears_content() {
        let mut arena = Arena::new();
        arena.put_buffer(vec![NodeDescriptor::fresh(crate::NodeId::new(7))]);
        let buf = arena.take_buffer();
        assert!(buf.is_empty(), "recycled buffers must never leak content");
    }

    #[test]
    fn take_on_a_dry_pool_allocates_fresh() {
        let mut arena = Arena::new();
        let buf = arena.take_buffer();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 0);
    }

    #[test]
    fn custom_pool_limit_is_honored() {
        let mut arena = Arena::with_pool_limit(2);
        assert_eq!(arena.pool_limit(), 2);
        for _ in 0..5 {
            arena.put_buffer(Vec::with_capacity(8));
        }
        assert_eq!(arena.pooled_buffers(), 2);
    }

    #[test]
    fn prewarm_fills_pool() {
        let mut arena = Arena::new();
        arena.prewarm(4, 31);
        assert_eq!(arena.pooled_buffers(), 4);
        // Idempotent: never exceeds the requested count or the limit.
        arena.prewarm(4, 31);
        assert_eq!(arena.pooled_buffers(), 4);
        arena.prewarm(100, 31);
        assert_eq!(arena.pooled_buffers(), POOL_LIMIT);
    }
}
