//! Property-based tests for the graph toolkit.

use proptest::prelude::*;
use pss_graph::{clustering, components, gen, paths, DiGraph, UGraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy producing a random edge list over `n` nodes.
fn edge_list(max_n: usize, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..max_edges);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn undirected_degree_sum_is_twice_edges((n, edges) in edge_list(60, 200)) {
        let g = UGraph::from_edges(n, edges).unwrap();
        let degree_sum: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn undirected_adjacency_is_symmetric((n, edges) in edge_list(40, 120)) {
        let g = UGraph::from_edges(n, edges).unwrap();
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "asymmetric edge {}-{}", u, v);
            }
        }
    }

    #[test]
    fn components_partition_the_nodes((n, edges) in edge_list(60, 150)) {
        let g = UGraph::from_edges(n, edges).unwrap();
        let r = components::connected_components(&g);
        prop_assert_eq!(r.sizes().iter().sum::<usize>(), n);
        prop_assert_eq!(r.assignment().len(), n);
        // Sizes are sorted decreasing and consistent with the assignment.
        for w in r.sizes().windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for comp in 0..r.count() as u32 {
            let count = r.assignment().iter().filter(|&&c| c == comp).count();
            prop_assert_eq!(count, r.sizes()[comp as usize]);
        }
    }

    #[test]
    fn connected_nodes_share_components((n, edges) in edge_list(40, 100)) {
        let g = UGraph::from_edges(n, edges.clone()).unwrap();
        let r = components::connected_components(&g);
        for (u, v) in edges {
            if u != v {
                prop_assert!(r.same_component(u, v));
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges((n, edges) in edge_list(40, 100)) {
        let g = UGraph::from_edges(n, edges).unwrap();
        let dist = paths::bfs_distances(&g, 0);
        // Adjacent nodes differ by at most one hop.
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            if du != paths::UNREACHABLE && dv != paths::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv); // both unreachable
            }
        }
    }

    #[test]
    fn bfs_is_symmetric_between_node_pairs((n, edges) in edge_list(30, 80)) {
        let g = UGraph::from_edges(n, edges).unwrap();
        let d0 = paths::bfs_distances(&g, 0);
        for v in 1..n as u32 {
            let dv = paths::bfs_distances(&g, v);
            prop_assert_eq!(d0[v as usize], dv[0]);
        }
    }

    #[test]
    fn local_clustering_in_unit_interval((n, edges) in edge_list(40, 150)) {
        let g = UGraph::from_edges(n, edges).unwrap();
        for v in 0..n as u32 {
            let c = clustering::local_clustering(&g, v);
            prop_assert!((0.0..=1.0).contains(&c));
        }
        let cc = clustering::clustering_coefficient(&g);
        prop_assert!((0.0..=1.0).contains(&cc));
        let t = clustering::transitivity(&g);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn digraph_roundtrip_preserves_views(views in prop::collection::vec(prop::collection::vec(0u32..20, 0..10), 20)) {
        let g = DiGraph::from_views(20, views.clone()).unwrap();
        for (v, view) in views.iter().enumerate() {
            let mut expected: Vec<u32> = view
                .iter()
                .copied()
                .filter(|&d| d as usize != v)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(g.out_neighbors(v as u32), expected.as_slice());
        }
    }

    #[test]
    fn induced_subgraph_never_gains_edges((n, edges) in edge_list(40, 120), seed in 0u64..1000) {
        let g = UGraph::from_edges(n, edges).unwrap();
        let keep: Vec<bool> = (0..n).map(|i| !(i as u64 + seed).is_multiple_of(3)).collect();
        let sub = g.induced_subgraph(&keep);
        prop_assert!(sub.edge_count() <= g.edge_count());
        prop_assert_eq!(sub.node_count(), keep.iter().filter(|&&k| k).count());
    }

    #[test]
    fn uniform_view_digraph_has_requested_degree(n in 2usize..100, c in 1usize..40, seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::uniform_view_digraph(n, c, &mut rng);
        let want = c.min(n - 1);
        for v in 0..n as u32 {
            prop_assert_eq!(g.out_degree(v), want);
        }
        prop_assert_eq!(g.edge_count(), n * want);
    }

    #[test]
    fn ring_lattice_is_regular_and_connected(n in 3usize..120, k in 2usize..8) {
        let k = k.min(n - 1);
        let g = gen::ring_lattice(n, k);
        for v in 0..n as u32 {
            prop_assert_eq!(g.out_degree(v), k);
        }
        let u = g.to_undirected();
        prop_assert!(components::connected_components(&u).is_connected());
    }

    #[test]
    fn sampled_path_length_within_tolerance(seed in 0u64..30) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::uniform_view_digraph(300, 8, &mut rng).to_undirected();
        let exact = paths::average_path_length(&g);
        let est = paths::estimate_average_path_length(&g, 60, &mut rng);
        prop_assert!((exact.average - est.average).abs() < 0.25,
            "exact {} vs est {}", exact.average, est.average);
    }
}
