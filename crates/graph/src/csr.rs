//! Compressed sparse row (CSR) directed graphs for million-node overlays.
//!
//! [`crate::DiGraph`] stores one `Vec` per node — fine at the paper's
//! N = 10⁴, but at N = 10⁶ the per-node allocations (and the `Vec<Vec<_>>`
//! pointer chasing) dominate. [`Csr`] keeps the whole edge set in two flat
//! arrays (`offsets`, `targets`), built in a **single append pass** straight
//! from view slices: no hash maps, no per-node vectors, exactly two
//! allocations that grow amortized.
//!
//! Exact full-graph metrics are O(N·E) and out of reach at this scale, so
//! the module provides the **sampled-source estimators** the paper's
//! figures need: average path length from `k` BFS sources and clustering
//! from `k` sampled nodes, both over the *undirected* communication graph
//! (an edge exists if either endpoint's view holds the other), evaluated
//! lazily from the CSR and its transpose without materializing the
//! symmetrized graph.

use rand::seq::index::sample;
use rand::Rng;

use crate::paths::PathLengthStats;
use crate::GraphError;

/// A directed graph over nodes `0..n` in compressed sparse row form.
///
/// # Examples
///
/// ```
/// use pss_graph::csr::CsrBuilder;
///
/// let mut b = CsrBuilder::new();
/// b.push_node([1, 2]); // node 0 -> {1, 2}
/// b.push_node([2]);    // node 1 -> {2}
/// b.push_node([]);     // node 2 -> {}
/// let g = b.finish()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.out_neighbors(0), &[1, 2]);
/// assert_eq!(g.in_degrees(), vec![0, 1, 2]);
/// # Ok::<(), pss_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Out-neighbors, sorted ascending within each node's range.
    targets: Vec<u32>,
}

/// Single-pass [`Csr`] construction; see the [module docs](self).
#[derive(Debug, Default)]
pub struct CsrBuilder {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CsrBuilder {
            offsets: vec![0],
            targets: Vec::new(),
        }
    }

    /// Creates a builder with pre-reserved capacity (the bulk path at
    /// N = 10⁶ knows both counts up front).
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        CsrBuilder {
            offsets,
            targets: Vec::with_capacity(edges),
        }
    }

    /// Appends the next node's out-neighbors (its view targets). Nodes are
    /// implicitly numbered in call order. Self-loops are dropped and
    /// duplicates collapsed, mirroring the view invariant ("at most one
    /// descriptor per node, never self").
    pub fn push_node(&mut self, neighbors: impl IntoIterator<Item = u32>) {
        let node = (self.offsets.len() - 1) as u32;
        let start = *self.offsets.last().expect("non-empty by construction") as usize;
        self.targets
            .extend(neighbors.into_iter().filter(|&t| t != node));
        self.targets[start..].sort_unstable();
        let row = &mut self.targets[start..];
        let mut kept = 0;
        for i in 0..row.len() {
            if i == 0 || row[i] != row[i - 1] {
                row[kept] = row[i];
                kept += 1;
            }
        }
        self.targets.truncate(start + kept);
        let end = u32::try_from(self.targets.len()).expect("edge count fits u32");
        self.offsets.push(end);
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any edge targets a node
    /// `>=` the number of pushed nodes.
    pub fn finish(self) -> Result<Csr, GraphError> {
        let n = self.offsets.len() - 1;
        if let Some(&bad) = self.targets.iter().find(|&&t| t as usize >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                node_count: n,
            });
        }
        Ok(Csr {
            offsets: self.offsets,
            targets: self.targets,
        })
    }
}

impl Csr {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        let (a, b) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        &self.targets[a as usize..b as usize]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: u32) -> usize {
        self.out_neighbors(v).len()
    }

    /// True if the directed edge `(src, dst)` exists.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.out_neighbors(src).binary_search(&dst).is_ok()
    }

    /// In-degree of every node: one counting pass, no hashing.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut indeg = vec![0u32; self.node_count()];
        for &t in &self.targets {
            indeg[t as usize] += 1;
        }
        indeg
    }

    /// The transposed graph (edge directions reversed), built by counting
    /// sort in O(N + E). Iterating sources in ascending order makes every
    /// reversed row come out sorted, preserving the CSR invariant.
    pub fn reverse(&self) -> Csr {
        let n = self.node_count();
        let mut offsets = vec![0u32; n + 1];
        for &t in &self.targets {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; self.targets.len()];
        for src in 0..n as u32 {
            for &dst in self.out_neighbors(src) {
                targets[cursor[dst as usize] as usize] = src;
                cursor[dst as usize] += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// True if `u` and `v` are connected in the undirected communication
    /// graph (either view holds the other).
    pub fn has_undirected_edge(&self, u: u32, v: u32) -> bool {
        self.has_edge(u, v) || self.has_edge(v, u)
    }

    /// Visits every undirected neighbor of `v` (out-neighbors plus
    /// in-neighbors from `rev`; mutual edges are visited twice — consumers
    /// that care deduplicate, BFS naturally ignores revisits).
    fn for_each_undirected_neighbor(&self, rev: &Csr, v: u32, mut f: impl FnMut(u32)) {
        for &t in self.out_neighbors(v) {
            f(t);
        }
        for &t in rev.out_neighbors(v) {
            f(t);
        }
    }

    /// Estimates the average undirected shortest-path length from `sources`
    /// random BFS sources (every BFS measures its `N−1` ordered pairs
    /// exactly, so the estimate is unbiased with error `O(1/√k)`). `rev`
    /// must be [`Csr::reverse`] of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rev` has a different node count.
    pub fn sampled_path_length(
        &self,
        rev: &Csr,
        sources: usize,
        rng: &mut impl Rng,
    ) -> PathLengthStats {
        assert_eq!(rev.node_count(), self.node_count(), "rev must match");
        let n = self.node_count();
        let sources = sources.min(n);
        let chosen = sample(rng, n, sources);
        const UNVISITED: u32 = u32::MAX;
        let mut dist = vec![UNVISITED; n];
        let mut queue = std::collections::VecDeque::new();
        let mut sum = 0f64;
        let mut pairs = 0u64;
        let mut unreachable = 0u64;
        let mut max = 0u32;
        for src in chosen.iter() {
            dist.iter_mut().for_each(|d| *d = UNVISITED);
            dist[src] = 0;
            queue.clear();
            queue.push_back(src as u32);
            let mut reached = 0u64;
            while let Some(v) = queue.pop_front() {
                let d = dist[v as usize];
                if d > 0 {
                    sum += d as f64;
                    reached += 1;
                    max = max.max(d);
                }
                self.for_each_undirected_neighbor(rev, v, |t| {
                    if dist[t as usize] == UNVISITED {
                        dist[t as usize] = d + 1;
                        queue.push_back(t);
                    }
                });
            }
            pairs += reached;
            unreachable += (n as u64).saturating_sub(1 + reached);
        }
        PathLengthStats {
            average: if pairs > 0 {
                sum / pairs as f64
            } else {
                f64::NAN
            },
            max,
            pairs,
            unreachable_pairs: unreachable,
        }
    }

    /// Estimates the undirected clustering coefficient from `samples`
    /// random nodes: for each, the fraction of its neighbor pairs that are
    /// themselves connected (nodes with degree < 2 contribute 0, matching
    /// [`crate::clustering::local_clustering`]).
    ///
    /// # Panics
    ///
    /// Panics if `rev` has a different node count.
    pub fn sampled_clustering(&self, rev: &Csr, samples: usize, rng: &mut impl Rng) -> f64 {
        assert_eq!(rev.node_count(), self.node_count(), "rev must match");
        let n = self.node_count();
        if n == 0 {
            return 0.0;
        }
        let samples = samples.min(n);
        let chosen = sample(rng, n, samples);
        let mut neighborhood: Vec<u32> = Vec::new();
        let mut total = 0f64;
        for v in chosen.iter() {
            neighborhood.clear();
            self.for_each_undirected_neighbor(rev, v as u32, |t| neighborhood.push(t));
            neighborhood.sort_unstable();
            neighborhood.dedup();
            let k = neighborhood.len();
            if k < 2 {
                continue;
            }
            let mut links = 0usize;
            for i in 0..k {
                for j in i + 1..k {
                    if self.has_undirected_edge(neighborhood[i], neighborhood[j]) {
                        links += 1;
                    }
                }
            }
            total += links as f64 / (k * (k - 1) / 2) as f64;
        }
        total / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clustering, gen, paths};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn csr_of(views: &[&[u32]]) -> Csr {
        let mut b = CsrBuilder::new();
        for view in views {
            b.push_node(view.iter().copied());
        }
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let g = csr_of(&[&[2, 1], &[2], &[]]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_neighbors(0), &[1, 2]); // sorted
        assert_eq!(g.out_degree(2), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = csr_of(&[&[0, 1, 1, 2, 2, 2], &[], &[]]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_out_of_range_targets() {
        let mut b = CsrBuilder::new();
        b.push_node([5]);
        assert!(matches!(
            b.finish(),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn empty_graph() {
        let g = CsrBuilder::new().finish().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.reverse().node_count(), 0);
    }

    #[test]
    fn reverse_transposes_and_stays_sorted() {
        let g = csr_of(&[&[1, 2], &[2], &[0]]);
        let r = g.reverse();
        assert_eq!(r.out_neighbors(0), &[2]);
        assert_eq!(r.out_neighbors(1), &[0]);
        assert_eq!(r.out_neighbors(2), &[0, 1]);
        // Reversing twice is the identity.
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn undirected_edges_union_both_directions() {
        let g = csr_of(&[&[1], &[], &[1]]);
        let _ = g.reverse();
        assert!(g.has_undirected_edge(0, 1));
        assert!(g.has_undirected_edge(1, 0));
        assert!(g.has_undirected_edge(1, 2));
        assert!(!g.has_undirected_edge(0, 2));
    }

    /// Builds the same random overlay as a DiGraph/UGraph pair and as a
    /// CSR, and checks the sampled estimators against the exact values.
    #[test]
    fn estimators_match_exact_metrics() {
        let mut rng = SmallRng::seed_from_u64(9);
        let di = gen::uniform_view_digraph(600, 15, &mut rng);
        let ug = di.to_undirected();

        let mut b = CsrBuilder::with_capacity(di.node_count(), di.edge_count());
        for v in 0..di.node_count() as u32 {
            b.push_node(di.out_neighbors(v).iter().copied());
        }
        let csr = b.finish().unwrap();
        assert_eq!(csr.edge_count(), di.edge_count());
        let rev = csr.reverse();

        let exact_paths = paths::average_path_length(&ug);
        let est_paths = csr.sampled_path_length(&rev, 80, &mut rng);
        assert!(
            (exact_paths.average - est_paths.average).abs() < 0.1,
            "paths: exact {} vs sampled {}",
            exact_paths.average,
            est_paths.average
        );
        assert_eq!(est_paths.unreachable_pairs, 0);

        let exact_cc = clustering::clustering_coefficient(&ug);
        let est_cc = csr.sampled_clustering(&rev, 300, &mut rng);
        assert!(
            (exact_cc - est_cc).abs() < 0.02,
            "clustering: exact {exact_cc} vs sampled {est_cc}"
        );

        // Full-population sampling degenerates to the exact computation.
        let full = csr.sampled_path_length(&rev, 600, &mut rng);
        assert_eq!(full.pairs, exact_paths.pairs);
        assert!((full.average - exact_paths.average).abs() < 1e-12);
    }

    #[test]
    fn disconnected_components_reported_unreachable() {
        let g = csr_of(&[&[1], &[], &[3], &[]]);
        let rev = g.reverse();
        let mut rng = SmallRng::seed_from_u64(1);
        let stats = g.sampled_path_length(&rev, 4, &mut rng);
        assert!(stats.unreachable_pairs > 0);
        assert!(!stats.fully_reachable());
    }

    #[test]
    fn clustering_of_directed_triangle_is_one() {
        // 0->1, 1->2, 2->0: undirected triangle.
        let g = csr_of(&[&[1], &[2], &[0]]);
        let rev = g.reverse();
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(g.sampled_clustering(&rev, 3, &mut rng), 1.0);
    }
}
