//! Graph analysis toolkit for gossip overlay topologies.
//!
//! The Middleware 2004 peer-sampling paper evaluates protocols exclusively
//! through the *communication graph* induced by the partial views: a directed
//! edge `(a, b)` exists when node `a` holds a descriptor of node `b`. All
//! published properties are measured on the **undirected** version of that
//! graph. This crate provides:
//!
//! * [`DiGraph`] — the directed view graph (what the protocol maintains).
//! * [`UGraph`] — the undirected communication graph (what is measured).
//! * [`components`] — connected components and partitioning reports
//!   (Table 1, Figure 6).
//! * [`paths`] — BFS distances, exact and sampled average path length
//!   (Figures 2c, 3a, 3b).
//! * [`clustering`] — exact and sampled clustering coefficient
//!   (Figures 2a, 3c, 3d).
//! * [`metrics`] — one-call snapshot of all observed properties.
//! * [`gen`] — graph generators: the paper's uniform-view random baseline,
//!   Erdős–Rényi, ring lattice (Section 5.2), star, Watts–Strogatz.
//!
//! # Examples
//!
//! ```
//! use pss_graph::gen;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let directed = gen::uniform_view_digraph(1000, 30, &mut rng);
//! let g = directed.to_undirected();
//! // Every node holds 30 descriptors, so undirected degree is >= 30.
//! assert!(g.min_degree() >= 30);
//! let report = pss_graph::components::connected_components(&g);
//! assert_eq!(report.count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assortativity;
pub mod clustering;
pub mod components;
pub mod csr;
pub mod gen;
pub mod metrics;
pub mod paths;

mod di;
mod error;
mod un;

pub use di::DiGraph;
pub use error::GraphError;
pub use metrics::{GraphMetrics, MetricsConfig};
pub use un::UGraph;
