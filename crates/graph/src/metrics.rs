//! One-call measurement of all overlay properties tracked by the paper.

use rand::Rng;

use crate::clustering::{clustering_coefficient, estimate_clustering};
use crate::components::{connected_components, ComponentReport};
use crate::paths::{average_path_length, estimate_average_path_length, PathLengthStats};
use crate::UGraph;

/// How expensively to measure a snapshot.
///
/// `None` for a field means "exact"; a value means "estimate from that many
/// samples". The per-cycle experiment loops use sampling, end-of-run reports
/// use exact values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetricsConfig {
    /// Number of nodes to sample for the clustering coefficient.
    pub clustering_samples: Option<usize>,
    /// Number of BFS sources for the average path length.
    pub path_sources: Option<usize>,
}

impl MetricsConfig {
    /// Exact measurement (no sampling anywhere).
    pub fn exact() -> Self {
        MetricsConfig::default()
    }

    /// The sampling configuration used by the per-cycle experiment loops:
    /// 1000 clustering samples and 50 BFS sources, accurate to well under
    /// the plot resolution of the paper's figures.
    pub fn sampled() -> Self {
        MetricsConfig {
            clustering_samples: Some(1000),
            path_sources: Some(50),
        }
    }
}

/// A full property snapshot of an undirected communication graph.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphMetrics {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of undirected edges.
    pub edge_count: usize,
    /// Mean degree (Figures 2b, 3e, 3f).
    pub average_degree: f64,
    /// Smallest degree.
    pub min_degree: usize,
    /// Largest degree.
    pub max_degree: usize,
    /// (Possibly sampled) clustering coefficient (Figures 2a, 3c, 3d).
    pub clustering_coefficient: f64,
    /// (Possibly sampled) shortest-path statistics (Figures 2c, 3a, 3b).
    pub path_lengths: PathLengthStats,
    /// Number of connected components (Table 1).
    pub component_count: usize,
    /// Size of the largest component (Table 1).
    pub largest_component: usize,
}

impl GraphMetrics {
    /// Measures `g` under `config`, using `rng` for any sampling.
    pub fn measure(g: &UGraph, config: &MetricsConfig, rng: &mut impl Rng) -> Self {
        let components: ComponentReport = connected_components(g);
        let clustering = match config.clustering_samples {
            Some(k) => estimate_clustering(g, k, rng),
            None => clustering_coefficient(g),
        };
        let path_lengths = match config.path_sources {
            Some(k) => estimate_average_path_length(g, k, rng),
            None => average_path_length(g),
        };
        GraphMetrics {
            node_count: g.node_count(),
            edge_count: g.edge_count(),
            average_degree: g.average_degree(),
            min_degree: g.min_degree(),
            max_degree: g.max_degree(),
            clustering_coefficient: clustering,
            path_lengths,
            component_count: components.count(),
            largest_component: components.largest(),
        }
    }

    /// True if the measured graph was connected.
    pub fn is_connected(&self) -> bool {
        self.component_count <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_metrics_of_triangle() {
        let g = UGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let m = GraphMetrics::measure(&g, &MetricsConfig::exact(), &mut rng);
        assert_eq!(m.node_count, 3);
        assert_eq!(m.edge_count, 3);
        assert_eq!(m.average_degree, 2.0);
        assert_eq!(m.clustering_coefficient, 1.0);
        assert_eq!(m.path_lengths.average, 1.0);
        assert_eq!(m.component_count, 1);
        assert_eq!(m.largest_component, 3);
        assert!(m.is_connected());
    }

    #[test]
    fn sampled_metrics_close_to_exact() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::uniform_view_digraph(800, 20, &mut rng).to_undirected();
        let exact = GraphMetrics::measure(&g, &MetricsConfig::exact(), &mut rng);
        let sampled = GraphMetrics::measure(&g, &MetricsConfig::sampled(), &mut rng);
        assert_eq!(exact.node_count, sampled.node_count);
        assert_eq!(exact.average_degree, sampled.average_degree);
        assert!((exact.clustering_coefficient - sampled.clustering_coefficient).abs() < 0.02);
        assert!((exact.path_lengths.average - sampled.path_lengths.average).abs() < 0.1);
    }

    #[test]
    fn disconnected_graph_reports_components() {
        let g = UGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let m = GraphMetrics::measure(&g, &MetricsConfig::exact(), &mut rng);
        assert_eq!(m.component_count, 2);
        assert_eq!(m.largest_component, 2);
        assert!(!m.is_connected());
        assert!(!m.path_lengths.fully_reachable());
    }

    #[test]
    fn metrics_config_presets() {
        assert_eq!(MetricsConfig::exact().clustering_samples, None);
        assert_eq!(MetricsConfig::sampled().path_sources, Some(50));
    }
}
