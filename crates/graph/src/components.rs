//! Connected components and partitioning analysis.
//!
//! Connectivity is "a crucial feature, a minimal requirement for all
//! applications" (paper, Section 5); Table 1 reports the number of clusters
//! and the largest cluster size for the protocols that partitioned, and
//! Figure 6 reports how many nodes fall outside the largest cluster after
//! massive node removal.

use std::collections::VecDeque;

use crate::csr::Csr;
use crate::UGraph;

/// The result of a connected-components analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentReport {
    sizes: Vec<usize>,
    assignment: Vec<u32>,
}

impl ComponentReport {
    /// Number of connected components (0 for the empty graph).
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component sizes in decreasing order.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.first().copied().unwrap_or(0)
    }

    /// Number of nodes outside the largest component (Figure 6's y-axis).
    pub fn nodes_outside_largest(&self) -> usize {
        self.assignment.len() - self.largest()
    }

    /// True if the graph is connected (one component or empty).
    pub fn is_connected(&self) -> bool {
        self.sizes.len() <= 1
    }

    /// Component index (0-based, ordered by decreasing size) of each node.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// True if nodes `u` and `v` lie in the same component.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn same_component(&self, u: u32, v: u32) -> bool {
        self.assignment[u as usize] == self.assignment[v as usize]
    }
}

/// Computes connected components by repeated BFS.
///
/// Runs in `O(N + E)` time and `O(N)` space.
///
/// # Examples
///
/// ```
/// use pss_graph::{components::connected_components, UGraph};
///
/// let g = UGraph::from_edges(5, [(0, 1), (2, 3)])?;
/// let report = connected_components(&g);
/// assert_eq!(report.count(), 3); // {0,1}, {2,3}, {4}
/// assert_eq!(report.largest(), 2);
/// assert_eq!(report.nodes_outside_largest(), 3);
/// # Ok::<(), pss_graph::GraphError>(())
/// ```
pub fn connected_components(g: &UGraph) -> ComponentReport {
    let n = g.node_count();
    let mut raw_assignment = vec![u32::MAX; n];
    let mut raw_sizes: Vec<usize> = Vec::new();
    let mut queue = VecDeque::new();

    for start in 0..n as u32 {
        if raw_assignment[start as usize] != u32::MAX {
            continue;
        }
        let comp = raw_sizes.len() as u32;
        let mut size = 0usize;
        raw_assignment[start as usize] = comp;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &w in g.neighbors(v) {
                if raw_assignment[w as usize] == u32::MAX {
                    raw_assignment[w as usize] = comp;
                    queue.push_back(w);
                }
            }
        }
        raw_sizes.push(size);
    }

    // Re-rank components by decreasing size so index 0 is the largest.
    let mut order: Vec<usize> = (0..raw_sizes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(raw_sizes[i]));
    let mut rank = vec![0u32; raw_sizes.len()];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        rank[old_idx] = new_idx as u32;
    }
    let assignment: Vec<u32> = raw_assignment
        .into_iter()
        .map(|c| rank[c as usize])
        .collect();
    let mut sizes: Vec<usize> = order.iter().map(|&i| raw_sizes[i]).collect();
    sizes.sort_unstable_by_key(|&s| std::cmp::Reverse(s));

    ComponentReport { sizes, assignment }
}

/// True if the graph is connected (trivially true for empty and singleton
/// graphs). Cheaper than a full [`connected_components`] when only the
/// boolean is needed: it stops as soon as one BFS covers everything.
pub fn is_connected(g: &UGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[0] = true;
    queue.push_back(0u32);
    let mut visited = 0usize;
    while let Some(v) = queue.pop_front() {
        visited += 1;
        for &w in g.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    visited == n
}

/// Size of the largest *weakly* connected component of a directed CSR
/// graph — directed edges treated as undirected, by union-find with path
/// halving straight over the edge array, with no undirected-adjacency
/// materialization. This is the snapshot-scale companion to
/// [`connected_components`]: per-period overlay monitoring (the workload
/// schedules) calls it on every CSR snapshot, where building a [`UGraph`]
/// first would double the work.
pub fn largest_weak_component(graph: &Csr) -> usize {
    let n = graph.node_count();
    if n == 0 {
        return 0;
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize]; // path halving
            v = parent[v as usize];
        }
        v
    }
    for v in 0..n as u32 {
        for &w in graph.out_neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, w));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    let mut sizes = vec![0usize; n];
    let mut largest = 0;
    for v in 0..n as u32 {
        let root = find(&mut parent, v) as usize;
        sizes[root] += 1;
        largest = largest.max(sizes[root]);
    }
    largest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UGraph {
        UGraph::from_edges(n, edges.iter().copied()).unwrap()
    }

    #[test]
    fn empty_graph_has_no_components() {
        let r = connected_components(&graph(0, &[]));
        assert_eq!(r.count(), 0);
        assert_eq!(r.largest(), 0);
        assert_eq!(r.nodes_outside_largest(), 0);
        assert!(r.is_connected());
        assert!(is_connected(&graph(0, &[])));
    }

    #[test]
    fn singleton_is_connected() {
        let r = connected_components(&graph(1, &[]));
        assert_eq!(r.count(), 1);
        assert!(r.is_connected());
        assert!(is_connected(&graph(1, &[])));
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let r = connected_components(&graph(4, &[]));
        assert_eq!(r.count(), 4);
        assert_eq!(r.largest(), 1);
        assert_eq!(r.nodes_outside_largest(), 3);
        assert!(!r.is_connected());
    }

    #[test]
    fn path_is_connected() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = connected_components(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.largest(), 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_triangles_and_an_isolate() {
        let g = graph(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let r = connected_components(&g);
        assert_eq!(r.count(), 3);
        assert_eq!(r.sizes(), &[3, 3, 1]);
        assert_eq!(r.nodes_outside_largest(), 4);
        assert!(r.same_component(0, 2));
        assert!(!r.same_component(0, 3));
        assert!(!is_connected(&g));
    }

    #[test]
    fn assignment_index_zero_is_largest() {
        // Big component second in discovery order; ranking must still put it
        // at index 0.
        let g = graph(5, &[(1, 2), (2, 3), (3, 4)]);
        let r = connected_components(&g);
        assert_eq!(r.sizes(), &[4, 1]);
        assert_eq!(r.assignment()[1], 0);
        assert_eq!(r.assignment()[0], 1);
    }

    #[test]
    fn sizes_sum_to_node_count() {
        let g = graph(9, &[(0, 1), (2, 3), (3, 4), (6, 7)]);
        let r = connected_components(&g);
        assert_eq!(r.sizes().iter().sum::<usize>(), 9);
    }

    fn csr(n: usize, views: &[&[u32]]) -> Csr {
        let mut builder = crate::csr::CsrBuilder::new();
        for v in 0..n {
            builder.push_node(views.get(v).copied().unwrap_or(&[]).iter().copied());
        }
        builder.finish().expect("valid indices")
    }

    #[test]
    fn largest_weak_component_matches_the_undirected_analysis() {
        // Directed edges count as undirected: 0→1, 2→1 is one weak
        // component of 3; nodes 3..5 are a chain; 6 is isolated.
        let g = csr(7, &[&[1], &[], &[1], &[4], &[5], &[]]);
        assert_eq!(largest_weak_component(&g), 3);
        assert_eq!(largest_weak_component(&csr(0, &[])), 0);
        // Fully disconnected.
        assert_eq!(largest_weak_component(&csr(4, &[])), 1);
        // Duplicate and self edges are harmless.
        let dup = csr(3, &[&[1, 1, 0], &[2], &[]]);
        assert_eq!(largest_weak_component(&dup), 3);
    }
}
