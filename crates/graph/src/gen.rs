//! Graph generators: baselines and initial topologies for the experiments.
//!
//! * [`uniform_view_digraph`] — the paper's random baseline: every view is a
//!   uniform random sample of the other nodes. The horizontal reference lines
//!   in Figures 2 and 3 are measured on this graph.
//! * [`ring_lattice`] — the structured, large-diameter start of Section 5.2.
//! * [`star`] — the pathological topology that `(*,*,pull)` collapses to.
//! * [`erdos_renyi`] and [`watts_strogatz`] — classic models used for
//!   context and tests (small-world comparisons, Section 8).

use rand::seq::index::sample;
use rand::Rng;

use crate::{DiGraph, UGraph};

/// The paper's uniform random baseline: each node's view holds `c` distinct
/// uniform-random other nodes (or `n − 1` if the group is smaller).
///
/// # Examples
///
/// ```
/// use pss_graph::gen::uniform_view_digraph;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = uniform_view_digraph(100, 30, &mut rng);
/// assert!((0..100).all(|v| g.out_degree(v) == 30));
/// ```
pub fn uniform_view_digraph(n: usize, c: usize, rng: &mut impl Rng) -> DiGraph {
    let mut views = Vec::with_capacity(n);
    let per_node = c.min(n.saturating_sub(1));
    for v in 0..n {
        // Sample from n-1 candidates (everyone but v), then shift indices at
        // or above v up by one to skip the self entry.
        let chosen = sample(rng, n - 1, per_node);
        let view: Vec<u32> = chosen
            .iter()
            .map(|i| if i < v { i as u32 } else { (i + 1) as u32 })
            .collect();
        views.push(view);
    }
    DiGraph::from_views(n, views).expect("generated indices are in range")
}

/// Ring lattice used as the structured initial topology in Section 5.2.
///
/// Nodes sit on a ring; each node's view holds its `k` nearest ring
/// neighbors, filled alternating right (+1, +2, …) and left (−1, −2, …), the
/// way the paper fills views "of the nearest nodes in the ring until the view
/// is filled". `k` is clamped to `n − 1`.
pub fn ring_lattice(n: usize, k: usize) -> DiGraph {
    let mut views = Vec::with_capacity(n);
    let k = k.min(n.saturating_sub(1));
    for v in 0..n as u64 {
        let n64 = n as u64;
        let mut view = Vec::with_capacity(k);
        let mut offset = 1u64;
        while view.len() < k {
            view.push(((v + offset) % n64) as u32);
            if view.len() < k {
                view.push(((v + n64 - offset % n64) % n64) as u32);
            }
            offset += 1;
        }
        views.push(view);
    }
    DiGraph::from_views(n, views).expect("ring indices are in range")
}

/// Star topology: every non-center node's view is `{0}`, the center's view is
/// `{1}` (views must be non-empty for the protocol to run). Returns the empty
/// or singleton graph for `n <= 1`.
///
/// This is the degenerate topology that pull-only protocols collapse to and
/// the implicit shape of the growing scenario's bootstrap.
pub fn star(n: usize) -> DiGraph {
    let mut views = vec![Vec::new(); n];
    if n > 1 {
        views[0] = vec![1];
        for view in views.iter_mut().skip(1) {
            *view = vec![0];
        }
    }
    DiGraph::from_views(n, views).expect("star indices are in range")
}

/// Erdős–Rényi G(n, p): each unordered pair is an edge with probability `p`.
///
/// Uses geometric gap-skipping, so the cost is `O(n + E)` rather than
/// `O(n²)`; `p` is clamped to `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> UGraph {
    let p = p.clamp(0.0, 1.0);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if p > 0.0 && n > 1 {
        if p >= 1.0 {
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    edges.push((u, v));
                }
            }
        } else {
            // Walk the flattened upper-triangular pair index with geometric
            // jumps: skip ~ floor(ln(U)/ln(1-p)) non-edges between edges.
            let total = n as u64 * (n as u64 - 1) / 2;
            let log1p = (1.0 - p).ln();
            let mut idx: u64 = 0;
            loop {
                let u: f64 = rng.random();
                let skip = if u <= 0.0 {
                    total // effectively terminate
                } else {
                    (u.ln() / log1p).floor() as u64
                };
                idx = idx.saturating_add(skip);
                if idx >= total {
                    break;
                }
                edges.push(pair_from_index(n as u64, idx));
                idx += 1;
            }
        }
    }
    UGraph::from_edges(n, edges).expect("generated indices are in range")
}

/// Maps a flattened upper-triangular index to the pair `(u, v)`, `u < v`.
fn pair_from_index(n: u64, idx: u64) -> (u32, u32) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve incrementally.
    let mut u = 0u64;
    let mut row_start = 0u64;
    loop {
        let row_len = n - u - 1;
        if idx < row_start + row_len {
            let v = u + 1 + (idx - row_start);
            return (u as u32, v as u32);
        }
        row_start += row_len;
        u += 1;
    }
}

/// Watts–Strogatz small-world graph: a ring lattice with `k` neighbors per
/// node (`k/2` each side, `k` must be even) whose "right-hand" edges are
/// rewired with probability `beta` to a uniform random non-duplicate target.
///
/// # Panics
///
/// Panics if `k` is odd or `k >= n`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> UGraph {
    assert!(k.is_multiple_of(2), "watts_strogatz requires even k");
    assert!(k < n, "watts_strogatz requires k < n");
    let beta = beta.clamp(0.0, 1.0);
    let mut adj: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
    let add = |adj: &mut Vec<std::collections::BTreeSet<u32>>, u: usize, v: usize| {
        adj[u].insert(v as u32);
        adj[v].insert(u as u32);
    };
    for u in 0..n {
        for j in 1..=k / 2 {
            add(&mut adj, u, (u + j) % n);
        }
    }
    for u in 0..n {
        for j in 1..=k / 2 {
            if rng.random::<f64>() >= beta {
                continue;
            }
            let old = (u + j) % n;
            // Pick a new target that is neither u nor already adjacent.
            if adj[u].len() >= n - 1 {
                continue; // saturated, nothing to rewire to
            }
            let new = loop {
                let cand = rng.random_range(0..n);
                if cand != u && !adj[u].contains(&(cand as u32)) {
                    break cand;
                }
            };
            adj[u].remove(&(old as u32));
            adj[old].remove(&(u as u32));
            add(&mut adj, u, new);
        }
    }
    let edges = adj.iter().enumerate().flat_map(|(u, set)| {
        set.iter()
            .copied()
            .filter(move |&v| (u as u32) < v)
            .map(move |v| (u as u32, v))
    });
    UGraph::from_edges(n, edges).expect("generated indices are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_views_have_exact_out_degree() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = uniform_view_digraph(50, 10, &mut rng);
        for v in 0..50 {
            assert_eq!(g.out_degree(v), 10);
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn uniform_views_clamp_c() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = uniform_view_digraph(5, 100, &mut rng);
        for v in 0..5 {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn uniform_views_tiny_groups() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(uniform_view_digraph(0, 5, &mut rng).node_count(), 0);
        assert_eq!(uniform_view_digraph(1, 5, &mut rng).edge_count(), 0);
    }

    #[test]
    fn uniform_view_graph_is_connected_at_paper_density() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = uniform_view_digraph(2000, 30, &mut rng).to_undirected();
        assert!(connected_components(&g).is_connected());
        assert!(g.min_degree() >= 30);
    }

    #[test]
    fn ring_lattice_small() {
        let g = ring_lattice(5, 2);
        // Each node sees +1 and -1.
        assert_eq!(g.out_neighbors(0), &[1, 4]);
        assert_eq!(g.out_neighbors(2), &[1, 3]);
        let u = g.to_undirected();
        assert_eq!(u.edge_count(), 5);
        assert_eq!(u.average_degree(), 2.0);
    }

    #[test]
    fn ring_lattice_odd_k_fills_asymmetrically() {
        let g = ring_lattice(7, 3);
        // +1, -1, +2
        let mut expected = vec![1u32, 6, 2];
        expected.sort_unstable();
        assert_eq!(g.out_neighbors(0), expected.as_slice());
    }

    #[test]
    fn ring_lattice_k_clamped() {
        let g = ring_lattice(4, 10);
        for v in 0..4 {
            assert_eq!(g.out_degree(v), 3);
        }
    }

    #[test]
    fn ring_lattice_diameter_is_large() {
        let g = ring_lattice(100, 2).to_undirected();
        assert_eq!(crate::paths::diameter(&g), 50);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.out_neighbors(0), &[1]);
        for v in 1..6 {
            assert_eq!(g.out_neighbors(v), &[0]);
        }
        let u = g.to_undirected();
        assert_eq!(u.degree(0), 5);
        assert_eq!(u.edge_count(), 5);
    }

    #[test]
    fn star_trivial_sizes() {
        assert_eq!(star(0).node_count(), 0);
        assert_eq!(star(1).edge_count(), 0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // 5 sigma tolerance.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn pair_from_index_enumerates_upper_triangle() {
        let n = 5u64;
        let mut seen = Vec::new();
        for idx in 0..n * (n - 1) / 2 {
            seen.push(pair_from_index(n, idx));
        }
        let expected: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|u| (u + 1..5).map(move |v| (u, v)))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        let lattice = ring_lattice(20, 4).to_undirected();
        assert_eq!(g, lattice);
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = watts_strogatz(100, 6, 0.5, &mut rng);
        assert_eq!(g.edge_count(), 100 * 3);
    }

    #[test]
    fn watts_strogatz_rewiring_shrinks_paths() {
        let mut rng = SmallRng::seed_from_u64(8);
        let lattice = watts_strogatz(200, 4, 0.0, &mut rng);
        let small_world = watts_strogatz(200, 4, 0.3, &mut rng);
        let lp = crate::paths::average_path_length(&lattice).average;
        let sp = crate::paths::average_path_length(&small_world).average;
        assert!(sp < lp, "rewired {sp} should beat lattice {lp}");
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn watts_strogatz_rejects_odd_k() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
