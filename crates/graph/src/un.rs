//! Undirected communication graphs.

use pss_stats::CountDistribution;

use crate::GraphError;

/// An undirected simple graph over nodes `0..n`, stored as sorted adjacency
/// lists.
///
/// This is the graph all the paper's measurements run on. Parallel edges and
/// self-loops are collapsed/dropped at construction.
///
/// # Examples
///
/// ```
/// use pss_graph::UGraph;
///
/// let g = UGraph::from_edges(4, [(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.degree(3), 0);
/// assert!(g.has_edge(2, 1));
/// # Ok::<(), pss_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UGraph {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl UGraph {
    /// Builds an undirected graph from an edge list.
    ///
    /// Each `(u, v)` pair adds the undirected edge `{u, v}`; duplicates (in
    /// either orientation) are collapsed and self-loops are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= n`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, GraphError> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u,
                    node_count: n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    node_count: n,
                });
            }
            if u == v {
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut edge_count = 0;
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            edge_count += list.len();
        }
        Ok(UGraph {
            adj,
            edge_count: edge_count / 2,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// True if the undirected edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Mean degree `2·E / N`, or 0.0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.adj.len() as f64
        }
    }

    /// Smallest degree in the graph (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Largest degree in the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Exact degree → frequency distribution (the paper's Figure 4).
    pub fn degree_distribution(&self) -> CountDistribution {
        self.adj.iter().map(|l| l.len() as u64).collect()
    }

    /// Iterator over all undirected edges, each reported once as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = u as u32;
            list.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The subgraph induced by the nodes for which `keep` is true.
    ///
    /// Kept nodes are relabeled consecutively in increasing original order.
    /// Used for the paper's Figure 6: remove a random fraction of nodes and
    /// measure connectivity of the rest.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.node_count()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> UGraph {
        assert_eq!(
            keep.len(),
            self.adj.len(),
            "keep mask must cover every node"
        );
        let mut relabel = vec![u32::MAX; self.adj.len()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                relabel[i] = next;
                next += 1;
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); next as usize];
        let mut edge_count = 0;
        for (u, list) in self.adj.iter().enumerate() {
            if !keep[u] {
                continue;
            }
            let nu = relabel[u] as usize;
            for &v in list {
                if keep[v as usize] {
                    adj[nu].push(relabel[v as usize]);
                }
            }
            // Input lists are sorted and relabeling is monotone, so the
            // output lists stay sorted.
            edge_count += adj[nu].len();
        }
        UGraph {
            adj,
            edge_count: edge_count / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = UGraph::from_edges(0, []).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn triangle() {
        let g = UGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.average_degree(), 2.0);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = UGraph::from_edges(2, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = UGraph::from_edges(2, [(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(UGraph::from_edges(2, [(0, 2)]).is_err());
        assert!(UGraph::from_edges(2, [(5, 0)]).is_err());
    }

    #[test]
    fn neighbors_sorted() {
        let g = UGraph::from_edges(4, [(2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn edges_reported_once() {
        let g = UGraph::from_edges(3, [(0, 1), (2, 1)]).unwrap();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn degree_distribution_counts() {
        let g = UGraph::from_edges(4, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let d = g.degree_distribution();
        assert_eq!(d.count_of(2), 3);
        assert_eq!(d.count_of(0), 1);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn induced_subgraph_relabels() {
        // Path 0-1-2-3; drop node 1 -> nodes {0,2,3} relabel to {0,1,2},
        // only edge 2-3 survives (as 1-2).
        let g = UGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_keep_all_is_identity() {
        let g = UGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let sub = g.induced_subgraph(&[true, true, true]);
        assert_eq!(sub, g);
    }

    #[test]
    #[should_panic(expected = "keep mask")]
    fn induced_subgraph_wrong_mask_panics() {
        let g = UGraph::from_edges(2, [(0, 1)]).unwrap();
        let _ = g.induced_subgraph(&[true]);
    }

    #[test]
    fn average_degree_of_star() {
        let g = UGraph::from_edges(5, (1..5).map(|v| (0u32, v))).unwrap();
        assert_eq!(g.average_degree(), 2.0 * 4.0 / 5.0);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 1);
    }
}
