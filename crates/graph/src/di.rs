//! Directed view graphs.

use pss_stats::CountDistribution;

use crate::{GraphError, UGraph};

/// A directed graph over nodes `0..n`, stored as out-adjacency lists.
///
/// In the peer-sampling setting, node `a` has an out-edge to node `b` exactly
/// when `a`'s partial view contains a descriptor of `b`; the out-degree of
/// every node is therefore at most the view size `c`.
///
/// Self-loops are rejected at construction (a node never stores its own
/// descriptor) and duplicate out-edges are collapsed.
///
/// # Examples
///
/// ```
/// use pss_graph::DiGraph;
///
/// let g = DiGraph::from_views(3, vec![vec![1, 2], vec![2], vec![]])?;
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.in_degrees(), vec![0, 1, 2]);
/// # Ok::<(), pss_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiGraph {
    out: Vec<Vec<u32>>,
    edge_count: usize,
}

impl DiGraph {
    /// Builds a directed graph from per-node out-neighbor lists ("views").
    ///
    /// `views.len()` may be less than `n` (missing nodes have no out-edges);
    /// duplicates within a view are collapsed and self-loops are dropped,
    /// mirroring the "at most one descriptor per node, never self" view
    /// invariant of the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any referenced node is
    /// `>= n`.
    pub fn from_views(n: usize, views: Vec<Vec<u32>>) -> Result<Self, GraphError> {
        if views.len() > n {
            return Err(GraphError::NodeOutOfRange {
                node: n as u32,
                node_count: n,
            });
        }
        let mut out: Vec<Vec<u32>> = views;
        out.resize(n, Vec::new());
        let mut edge_count = 0;
        for (src, list) in out.iter_mut().enumerate() {
            for &dst in list.iter() {
                if dst as usize >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: dst,
                        node_count: n,
                    });
                }
            }
            list.retain(|&dst| dst as usize != src);
            list.sort_unstable();
            list.dedup();
            edge_count += list.len();
        }
        Ok(DiGraph { out, edge_count })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        &self.out[v as usize]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: u32) -> usize {
        self.out[v as usize].len()
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.out.len()];
        for list in &self.out {
            for &dst in list {
                indeg[dst as usize] += 1;
            }
        }
        indeg
    }

    /// Distribution of in-degrees across all nodes.
    pub fn in_degree_distribution(&self) -> CountDistribution {
        self.in_degrees().into_iter().map(|d| d as u64).collect()
    }

    /// True if the directed edge `(src, dst)` exists.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.out[src as usize].binary_search(&dst).is_ok()
    }

    /// Drops orientation: the undirected communication graph the paper
    /// measures ("after initiating a connection the passive party will learn
    /// about the active party as well").
    pub fn to_undirected(&self) -> UGraph {
        let edges = self
            .out
            .iter()
            .enumerate()
            .flat_map(|(src, list)| list.iter().map(move |&dst| (src as u32, dst)));
        UGraph::from_edges(self.out.len(), edges).expect("edges validated at DiGraph construction")
    }

    /// Iterator over all directed edges `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(src, list)| list.iter().map(move |&dst| (src as u32, dst)))
    }

    /// The per-node out-neighbor lists, usable as protocol view seeds.
    pub fn views(&self) -> &[Vec<u32>] {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_views(0, vec![]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn views_shorter_than_n_are_padded() {
        let g = DiGraph::from_views(5, vec![vec![1]]).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = DiGraph::from_views(2, vec![vec![2]]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 2,
                node_count: 2
            }
        );
    }

    #[test]
    fn too_many_views_rejected() {
        assert!(DiGraph::from_views(1, vec![vec![], vec![]]).is_err());
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = DiGraph::from_views(2, vec![vec![0, 1], vec![1]]).unwrap();
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(1), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let g = DiGraph::from_views(3, vec![vec![1, 1, 2, 2, 2]]).unwrap();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn in_degrees_count_incoming() {
        let g = DiGraph::from_views(3, vec![vec![1, 2], vec![2], vec![]]).unwrap();
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
        let dist = g.in_degree_distribution();
        assert_eq!(dist.count_of(0), 1);
        assert_eq!(dist.count_of(1), 1);
        assert_eq!(dist.count_of(2), 1);
    }

    #[test]
    fn has_edge_is_directional() {
        let g = DiGraph::from_views(2, vec![vec![1]]).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn to_undirected_symmetrizes() {
        let g = DiGraph::from_views(3, vec![vec![1], vec![0, 2], vec![]]).unwrap();
        let u = g.to_undirected();
        // (0,1) appears in both directions but is one undirected edge.
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(1, 0));
        assert!(u.has_edge(2, 1));
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = DiGraph::from_views(3, vec![vec![1, 2], vec![2], vec![]]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
