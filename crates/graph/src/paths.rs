//! Shortest path lengths: BFS, exact and sampled averages.
//!
//! "The average path length is the average of shortest path lengths over all
//! pairs of nodes in the graph" (paper, Section 4.2). At N = 10⁴ the exact
//! all-pairs computation is `O(N·E)` per snapshot; the per-cycle plots use a
//! sampled estimator (BFS from a random subset of sources), whose accuracy is
//! verified against the exact value in tests.

use std::collections::VecDeque;

use rand::seq::index::sample;
use rand::Rng;

use crate::UGraph;

/// Distance sentinel for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source shortest path lengths (in hops) from `src` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs_distances(g: &UGraph, src: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let next = dist[v as usize] + 1;
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = next;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Aggregate shortest-path statistics for a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathLengthStats {
    /// Mean shortest-path length over the measured reachable ordered pairs.
    pub average: f64,
    /// Longest shortest path seen (the diameter when exact and connected).
    pub max: u32,
    /// Ordered reachable pairs measured (excluding self-pairs).
    pub pairs: u64,
    /// Ordered pairs that were unreachable (nonzero iff disconnected).
    pub unreachable_pairs: u64,
}

impl PathLengthStats {
    /// True if every measured pair was reachable.
    pub fn fully_reachable(&self) -> bool {
        self.unreachable_pairs == 0
    }
}

fn accumulate_from_sources(g: &UGraph, sources: impl Iterator<Item = u32>) -> PathLengthStats {
    let n = g.node_count() as u64;
    let mut sum = 0f64;
    let mut pairs = 0u64;
    let mut unreachable = 0u64;
    let mut max = 0u32;
    for src in sources {
        let dist = bfs_distances(g, src);
        let mut reached = 0u64;
        for &d in &dist {
            if d != UNREACHABLE && d > 0 {
                sum += d as f64;
                reached += 1;
                max = max.max(d);
            }
        }
        pairs += reached;
        unreachable += n.saturating_sub(1 + reached);
    }
    PathLengthStats {
        average: if pairs > 0 {
            sum / pairs as f64
        } else {
            f64::NAN
        },
        max,
        pairs,
        unreachable_pairs: unreachable,
    }
}

/// Exact average shortest path length over all ordered reachable pairs.
///
/// `O(N·(N+E))`: fine for tests and one-off snapshots, too slow for per-cycle
/// measurement at paper scale — use [`estimate_average_path_length`] there.
///
/// The average is `NaN` when the graph has fewer than two nodes (no pairs to
/// measure), mirroring the convention that path length is undefined there.
pub fn average_path_length(g: &UGraph) -> PathLengthStats {
    accumulate_from_sources(g, 0..g.node_count() as u32)
}

/// Estimates average path length by exact BFS from `sources` random sources.
///
/// Every BFS measures `N−1` ordered pairs exactly, so with `k` sources the
/// estimator averages `k·(N−1)` of the `N·(N−1)` terms of the exact mean —
/// an unbiased estimate whose error shrinks as `1/√k`. If `sources >= N` the
/// computation falls back to the exact value.
///
/// # Examples
///
/// ```
/// use pss_graph::{gen, paths};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let g = gen::uniform_view_digraph(500, 20, &mut rng).to_undirected();
/// let exact = paths::average_path_length(&g);
/// let est = paths::estimate_average_path_length(&g, 50, &mut rng);
/// assert!((exact.average - est.average).abs() < 0.1);
/// ```
pub fn estimate_average_path_length(
    g: &UGraph,
    sources: usize,
    rng: &mut impl Rng,
) -> PathLengthStats {
    let n = g.node_count();
    if sources >= n {
        return average_path_length(g);
    }
    let chosen = sample(rng, n, sources);
    accumulate_from_sources(g, chosen.iter().map(|i| i as u32))
}

/// Exact eccentricity of `src`: the longest shortest path from it, ignoring
/// unreachable nodes. Returns 0 for an isolated node.
pub fn eccentricity(g: &UGraph, src: u32) -> u32 {
    bfs_distances(g, src)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter: the largest eccentricity over all nodes, ignoring
/// unreachable pairs. `O(N·(N+E))`.
pub fn diameter(g: &UGraph) -> u32 {
    (0..g.node_count() as u32)
        .map(|v| eccentricity(g, v))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UGraph {
        UGraph::from_edges(n, edges.iter().copied()).unwrap()
    }

    #[test]
    fn bfs_on_path_graph() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = graph(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn average_path_length_of_path_graph() {
        // Path 0-1-2: ordered pair distances 1,2,1,1,2,1 -> mean 8/6.
        let g = graph(3, &[(0, 1), (1, 2)]);
        let s = average_path_length(&g);
        assert!((s.average - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.max, 2);
        assert_eq!(s.pairs, 6);
        assert!(s.fully_reachable());
    }

    #[test]
    fn average_path_length_of_complete_graph() {
        let edges: Vec<_> = (0..5u32)
            .flat_map(|u| (u + 1..5).map(move |v| (u, v)))
            .collect();
        let g = graph(5, &edges);
        let s = average_path_length(&g);
        assert_eq!(s.average, 1.0);
        assert_eq!(s.max, 1);
    }

    #[test]
    fn disconnected_pairs_are_counted() {
        let g = graph(4, &[(0, 1), (2, 3)]);
        let s = average_path_length(&g);
        assert_eq!(s.average, 1.0);
        assert_eq!(s.pairs, 4);
        assert_eq!(s.unreachable_pairs, 8);
        assert!(!s.fully_reachable());
    }

    #[test]
    fn tiny_graphs_have_nan_average() {
        assert!(average_path_length(&graph(0, &[])).average.is_nan());
        assert!(average_path_length(&graph(1, &[])).average.is_nan());
    }

    #[test]
    fn estimator_with_all_sources_is_exact() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let exact = average_path_length(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        let est = estimate_average_path_length(&g, 10, &mut rng);
        assert_eq!(exact, est);
    }

    #[test]
    fn estimator_close_to_exact_on_random_graph() {
        let mut rng = SmallRng::seed_from_u64(99);
        let g = crate::gen::uniform_view_digraph(400, 10, &mut rng).to_undirected();
        let exact = average_path_length(&g);
        let est = estimate_average_path_length(&g, 80, &mut rng);
        assert!(
            (exact.average - est.average).abs() < 0.15,
            "exact {} vs est {}",
            exact.average,
            est.average
        );
    }

    #[test]
    fn eccentricity_and_diameter_of_path() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn diameter_ignores_unreachable() {
        let g = graph(4, &[(0, 1), (2, 3)]);
        assert_eq!(diameter(&g), 1);
    }

    #[test]
    fn isolated_node_eccentricity_is_zero() {
        let g = graph(2, &[]);
        assert_eq!(eccentricity(&g, 0), 0);
        assert_eq!(diameter(&g), 0);
    }

    #[test]
    fn ring_average_path_length_known_closed_form() {
        // Cycle of 6: distances from any node are 1,1,2,2,3 -> mean 9/5.
        let g = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let s = average_path_length(&g);
        assert!((s.average - 9.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.max, 3);
    }
}
