//! Degree assortativity: do high-degree nodes attach to high-degree nodes?
//!
//! The paper places gossip overlays "on the long list of complex networks
//! observable in nature" (Section 8); degree mixing is one of the standard
//! lenses on such networks (Newman's assortativity coefficient). Social
//! networks are assortative (r > 0), technological networks typically
//! disassortative (r < 0); the coefficient helps characterize where the
//! peer-sampling overlays fall.

use crate::UGraph;

/// Newman's degree assortativity coefficient `r ∈ [−1, 1]`.
///
/// Defined as the Pearson correlation of the degrees at the two ends of
/// every edge. Returns `None` for graphs where the correlation is
/// undefined: no edges, or all edge-endpoint degrees equal (zero variance —
/// e.g. regular graphs).
///
/// # Examples
///
/// ```
/// use pss_graph::{assortativity::degree_assortativity, UGraph};
///
/// // A star is maximally disassortative: the hub only touches leaves.
/// let star = UGraph::from_edges(5, (1..5).map(|v| (0u32, v)))?;
/// let r = degree_assortativity(&star).unwrap();
/// assert!((r + 1.0).abs() < 1e-9);
///
/// // A path of 4 nodes mixes degrees 1 and 2.
/// let path = UGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let r = degree_assortativity(&path).unwrap();
/// assert!(r < 0.0, "paths are disassortative, got {r}");
/// # Ok::<(), pss_graph::GraphError>(())
/// ```
pub fn degree_assortativity(g: &UGraph) -> Option<f64> {
    // Accumulate over both orientations of every edge, per Newman's
    // formulation for undirected graphs.
    let mut n = 0u64;
    let (mut sum_xy, mut sum_x, mut sum_x2) = (0f64, 0f64, 0f64);
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        // Both orientations: (du, dv) and (dv, du).
        n += 2;
        sum_xy += 2.0 * du * dv;
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
    }
    if n == 0 {
        return None;
    }
    let n = n as f64;
    let mean = sum_x / n;
    let var = sum_x2 / n - mean * mean;
    if var <= f64::EPSILON * mean.max(1.0) {
        return None;
    }
    let cov = sum_xy / n - mean * mean;
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UGraph {
        UGraph::from_edges(n, edges.iter().copied()).unwrap()
    }

    #[test]
    fn empty_and_edgeless_graphs_are_undefined() {
        assert_eq!(degree_assortativity(&graph(0, &[])), None);
        assert_eq!(degree_assortativity(&graph(5, &[])), None);
    }

    #[test]
    fn regular_graphs_are_undefined() {
        // Triangle: all degrees 2, zero variance.
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(degree_assortativity(&g), None);
        // Cycle of 6 likewise.
        let c6 = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(degree_assortativity(&c6), None);
    }

    #[test]
    fn path_graph_is_disassortative() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = degree_assortativity(&g).unwrap();
        assert!(r < 0.0, "got {r}");
        assert!(r >= -1.0 - 1e-9);
    }

    #[test]
    fn double_star_is_strongly_disassortative() {
        // Two hubs joined, each with 3 leaves: hub-leaf edges dominate.
        let g = graph(8, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (4, 6), (4, 7)]);
        let r = degree_assortativity(&g).unwrap();
        assert!(r < -0.5, "got {r}");
    }

    #[test]
    fn two_joined_cliques_are_assortative_free_of_nan() {
        // Clique of 4 + clique of 3 connected by one bridge edge: degrees
        // mix mildly; coefficient is finite and within [-1, 1].
        let mut edges = vec![];
        for u in 0..4u32 {
            for v in u + 1..4 {
                edges.push((u, v));
            }
        }
        for u in 4..7u32 {
            for v in u + 1..7 {
                edges.push((u, v));
            }
        }
        edges.push((0, 4));
        let g = graph(7, &edges);
        let r = degree_assortativity(&g).unwrap();
        assert!((-1.0..=1.0).contains(&r), "got {r}");
    }

    #[test]
    fn random_uniform_view_graph_is_weakly_mixed() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = crate::gen::uniform_view_digraph(800, 20, &mut rng).to_undirected();
        let r = degree_assortativity(&g).unwrap();
        assert!(
            r.abs() < 0.15,
            "random baseline should be near zero, got {r}"
        );
    }

    #[test]
    fn erdos_renyi_is_nearly_neutral() {
        let mut rng = SmallRng::seed_from_u64(14);
        let g = crate::gen::erdos_renyi(600, 0.03, &mut rng);
        let r = degree_assortativity(&g).unwrap();
        assert!(r.abs() < 0.12, "G(n,p) should be near zero, got {r}");
    }
}
