//! Clustering coefficients.
//!
//! "The clustering coefficient of a node a is defined as the number of edges
//! between the neighbors of a divided by the number of all possible edges
//! between those neighbors. … The clustering coefficient of the graph is the
//! average of the clustering coefficients of the nodes, and always lies
//! between 0 and 1." (paper, Section 4.2)

use rand::seq::index::sample;
use rand::Rng;

use crate::UGraph;

/// Local clustering coefficient of node `v`.
///
/// Nodes with degree below 2 have no possible neighbor pairs; by the usual
/// Watts–Strogatz convention their coefficient is 0. (The paper's overlays
/// have minimum degree `c = 30`, so the convention never matters there.)
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn local_clustering(g: &UGraph, v: u32) -> f64 {
    let neigh = g.neighbors(v);
    let k = neigh.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    // Count edges among neighbors; neighbor lists are sorted, so iterate
    // pairs (i < j) and binary-search the shorter list's membership.
    for (i, &a) in neigh.iter().enumerate() {
        let adj_a = g.neighbors(a);
        for &b in &neigh[i + 1..] {
            if adj_a.binary_search(&b).is_ok() {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Graph clustering coefficient: the mean of [`local_clustering`] over all
/// nodes. Returns 0.0 for the empty graph.
///
/// Cost is `O(Σ_v deg(v)² · log deg)`; at the paper's scale (N = 10⁴, degree
/// ≈ 60) the exact value is affordable, but per-cycle plotting uses
/// [`estimate_clustering`].
///
/// # Examples
///
/// ```
/// use pss_graph::{clustering, UGraph};
///
/// // A triangle is fully clustered.
/// let g = UGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(clustering::clustering_coefficient(&g), 1.0);
/// # Ok::<(), pss_graph::GraphError>(())
/// ```
pub fn clustering_coefficient(g: &UGraph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = (0..n as u32).map(|v| local_clustering(g, v)).sum();
    sum / n as f64
}

/// Estimates the clustering coefficient from `samples` random nodes.
///
/// Unbiased: the exact coefficient is the mean of i.i.d.-sampled local
/// coefficients. Falls back to the exact computation when `samples >= N`.
pub fn estimate_clustering(g: &UGraph, samples: usize, rng: &mut impl Rng) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    if samples >= n {
        return clustering_coefficient(g);
    }
    let chosen = sample(rng, n, samples);
    let sum: f64 = chosen.iter().map(|v| local_clustering(g, v as u32)).sum();
    sum / samples as f64
}

/// Global transitivity: `3 × triangles / connected triples`.
///
/// A different (triangle-weighted) notion of clustering, useful as a
/// cross-check; equals the average local coefficient only on degree-regular
/// graphs. Returns 0.0 when the graph has no connected triple.
pub fn transitivity(g: &UGraph) -> f64 {
    let n = g.node_count();
    let mut triangles3 = 0u64; // each triangle counted once per corner
    let mut triples = 0u64;
    for v in 0..n as u32 {
        let neigh = g.neighbors(v);
        let k = neigh.len() as u64;
        triples += k.saturating_sub(1) * k / 2;
        for (i, &a) in neigh.iter().enumerate() {
            let adj_a = g.neighbors(a);
            for &b in &neigh[i + 1..] {
                if adj_a.binary_search(&b).is_ok() {
                    triangles3 += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        triangles3 as f64 / triples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UGraph {
        UGraph::from_edges(n, edges.iter().copied()).unwrap()
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(clustering_coefficient(&g), 1.0);
        assert_eq!(transitivity(&g), 1.0);
    }

    #[test]
    fn tree_has_zero_clustering() {
        // Paper: "For a complete graph, it is 1, for a tree it is 0."
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(clustering_coefficient(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn complete_graph_is_one() {
        let edges: Vec<_> = (0..6u32)
            .flat_map(|u| (u + 1..6).map(move |v| (u, v)))
            .collect();
        let g = graph(6, &edges);
        assert_eq!(clustering_coefficient(&g), 1.0);
        assert_eq!(transitivity(&g), 1.0);
    }

    #[test]
    fn local_values() {
        // Kite: triangle 0-1-2 plus pendant 3 attached to 0.
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        assert!((local_clustering(&g, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 1), 1.0);
        assert_eq!(local_clustering(&g, 3), 0.0); // degree 1
        let expected = (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0;
        assert!((clustering_coefficient(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(clustering_coefficient(&graph(0, &[])), 0.0);
        assert_eq!(clustering_coefficient(&graph(1, &[])), 0.0);
        assert_eq!(transitivity(&graph(1, &[])), 0.0);
    }

    #[test]
    fn estimate_matches_exact_when_oversampled() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let mut rng = SmallRng::seed_from_u64(5);
        let est = estimate_clustering(&g, 100, &mut rng);
        assert_eq!(est, clustering_coefficient(&g));
    }

    #[test]
    fn estimate_close_on_random_graph() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = crate::gen::uniform_view_digraph(600, 15, &mut rng).to_undirected();
        let exact = clustering_coefficient(&g);
        let est = estimate_clustering(&g, 300, &mut rng);
        assert!(
            (exact - est).abs() < 0.02,
            "exact {exact} vs estimate {est}"
        );
    }

    #[test]
    fn lattice_clustering_known_value() {
        // Ring lattice where each node connects to 2 neighbors on each side:
        // local clustering is 0.5 for every node (3 of 6 possible links).
        let g = crate::gen::ring_lattice(20, 4).to_undirected();
        assert!((clustering_coefficient(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transitivity_of_star_is_zero() {
        let g = crate::gen::star(10).to_undirected();
        assert_eq!(transitivity(&g), 0.0);
    }
}
