//! Error type for graph construction.

use core::fmt;

/// Error returned when constructing a graph from invalid input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a node index `>= node_count`.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The number of nodes in the graph.
        node_count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node index {node} out of range for graph of {node_count} nodes"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_index_and_size() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            node_count: 5,
        };
        let text = e.to_string();
        assert!(text.contains('9'));
        assert!(text.contains('5'));
    }
}
