//! Peer sources: where applications get their gossip partners from.

use pss_core::NodeId;
use pss_sim::{Engine, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A per-node peer supply, the application-side face of the peer sampling
/// service: "provide a participating node … with a subset of peers … to send
/// gossip messages to".
///
/// Sources that sit on a live membership layer also expose it: [`is_live`]
/// classifies ids and [`live_ids`] enumerates the current population, so
/// protocols can denominate coverage and variance by who is actually
/// participating instead of a static id range.
///
/// [`is_live`]: SampleSource::is_live
/// [`live_ids`]: SampleSource::live_ids
pub trait SampleSource {
    /// Draws a peer for `node`, or `None` if the service knows none.
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId>;

    /// Advances the underlying membership layer by one round, if it has one.
    /// The default does nothing (static sources).
    fn advance_round(&mut self) {}

    /// True if the service currently believes `node` participates. Static
    /// sources have no membership layer and report every id live.
    fn is_live(&self, _node: NodeId) -> bool {
        true
    }

    /// The current live membership in increasing id order, or `None` for
    /// static sources whose population is the protocol's full id range.
    fn live_ids(&self) -> Option<Vec<NodeId>> {
        None
    }
}

/// The gossip-based service: peers come from each node's partial view in a
/// live [`Simulation`], and the overlay keeps evolving one cycle per
/// application round.
///
/// Unlike [`EngineSampleSource`] this draws raw view entries, dead links
/// included — the price of a crashed peer surfaces as a `wasted` delivery in
/// the consuming protocol.
pub struct SimSampleSource<'a> {
    sim: &'a mut Simulation,
}

impl<'a> SimSampleSource<'a> {
    /// Wraps a simulation as a peer source.
    pub fn new(sim: &'a mut Simulation) -> Self {
        SimSampleSource { sim }
    }
}

impl SampleSource for SimSampleSource<'_> {
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId> {
        self.sim.get_peer(node)
    }

    fn advance_round(&mut self) {
        self.sim.run_cycle();
    }

    fn is_live(&self, node: NodeId) -> bool {
        self.sim.is_alive(node)
    }

    fn live_ids(&self) -> Option<Vec<NodeId>> {
        Some(self.sim.alive_ids())
    }
}

/// The peer sampling service over any [`Engine`] — the sequential cycle
/// simulator, the sharded cycle engine, or the sharded event engine.
///
/// Sampling filters each node's view down to currently-live peers (the
/// service-level contract: a sample is a node you can actually gossip with)
/// and draws uniformly from that subset with the source's own RNG, so
/// attaching an application never perturbs the engine's deterministic
/// digest. [`advance_round`](SampleSource::advance_round) runs one engine
/// cycle / period.
pub struct EngineSampleSource<'a, E: Engine> {
    engine: &'a mut E,
    rng: SmallRng,
    scratch: Vec<NodeId>,
}

impl<'a, E: Engine> EngineSampleSource<'a, E> {
    /// Wraps an engine; `seed` drives only the sampling choices, never the
    /// engine's own RNG streams.
    pub fn new(engine: &'a mut E, seed: u64) -> Self {
        EngineSampleSource {
            engine,
            rng: SmallRng::seed_from_u64(seed ^ 0x005a_17ab_1e0f_f00d),
            scratch: Vec::new(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        self.engine
    }
}

impl<E: Engine> SampleSource for EngineSampleSource<'_, E> {
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId> {
        let view = self.engine.view_of(node)?;
        self.scratch.clear();
        for id in view.ids() {
            if self.engine.is_alive(id) {
                self.scratch.push(id);
            }
        }
        if self.scratch.is_empty() {
            return None;
        }
        let pick = self.rng.random_range(0..self.scratch.len());
        Some(self.scratch[pick])
    }

    fn advance_round(&mut self) {
        self.engine.run_cycle();
    }

    fn is_live(&self, node: NodeId) -> bool {
        self.engine.is_alive(node)
    }

    fn live_ids(&self) -> Option<Vec<NodeId>> {
        Some(self.engine.alive_ids())
    }
}

/// The ideal service: independent uniform samples over the full membership
/// `0..n`, excluding the asking node. The baseline all gossip theory
/// assumes.
#[derive(Debug, Clone)]
pub struct OracleSource {
    n: u64,
    rng: SmallRng,
}

impl OracleSource {
    /// Creates an oracle over nodes `0..n`.
    pub fn new(n: usize, seed: u64) -> Self {
        OracleSource {
            n: n as u64,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl SampleSource for OracleSource {
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId> {
        if self.n == 0 {
            return None;
        }
        if node.as_u64() >= self.n {
            // The asker is outside the oracle's id space (a late joiner, on
            // schedules that grow past the initial population): there is no
            // self to exclude, so sample uniformly over the whole group.
            // The exclusion shift below would never fire and silently drop
            // id n-1 from the support.
            return Some(NodeId::new(self.rng.random_range(0..self.n)));
        }
        if self.n == 1 {
            return None;
        }
        // Uniform over the other n-1 nodes.
        let r = self.rng.random_range(0..self.n - 1);
        Some(NodeId::new(if r >= node.as_u64() { r + 1 } else { r }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::{PolicyTriple, ProtocolConfig};
    use pss_sim::{scenario, ShardedSimulation};

    #[test]
    fn oracle_excludes_self_and_covers_all() {
        let mut o = OracleSource::new(10, 3);
        let asker = NodeId::new(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let p = o.sample_for(asker).unwrap();
            assert_ne!(p, asker);
            assert!(p.as_u64() < 10);
            seen.insert(p);
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn oracle_gives_full_support_to_out_of_range_askers() {
        // Regression: the exclusion shift used to clip id n-1 out of the
        // support whenever the asker sat outside 0..n — exactly the ids
        // churn and flash-crowd joiners carry.
        for asker in [10u64, 11, 1_000] {
            let mut o = OracleSource::new(10, 7);
            let asker = NodeId::new(asker);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..500 {
                let p = o.sample_for(asker).unwrap();
                assert!(p.as_u64() < 10);
                seen.insert(p);
            }
            assert_eq!(seen.len(), 10, "support clipped for asker {asker}");
        }
        // A group of one has no other member for an insider, but an
        // outsider can still be pointed at the sole member.
        let mut o = OracleSource::new(1, 3);
        assert_eq!(o.sample_for(NodeId::new(5)), Some(NodeId::new(0)));
    }

    #[test]
    fn oracle_trivial_group() {
        let mut o = OracleSource::new(1, 3);
        assert!(o.sample_for(NodeId::new(0)).is_none());
        let mut o = OracleSource::new(0, 3);
        assert!(o.sample_for(NodeId::new(0)).is_none());
    }

    #[test]
    fn sim_source_draws_from_views_and_advances() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 5).unwrap();
        let mut sim = scenario::random_overlay(&config, 30, 4);
        let before = sim.cycle();
        let mut src = SimSampleSource::new(&mut sim);
        let p = src.sample_for(NodeId::new(0)).unwrap();
        assert!(p.as_u64() < 30);
        assert!(src.is_live(NodeId::new(0)));
        assert_eq!(src.live_ids().unwrap().len(), 30);
        src.advance_round();
        assert_eq!(sim.cycle(), before + 1);
    }

    #[test]
    fn engine_source_samples_only_live_peers() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap();
        let mut sim = scenario::random_overlay(&config, 40, 9);
        sim.run_cycles(5);
        // Kill a third of the population; raw views now hold dead links,
        // but the engine source must never hand one out.
        let killed = pss_sim::Engine::kill_random(&mut sim, 13);
        let dead: std::collections::HashSet<NodeId> = killed.into_iter().collect();
        let mut src = EngineSampleSource::new(&mut sim, 42);
        let live = src.live_ids().unwrap();
        assert_eq!(live.len(), 27);
        for &id in live.iter() {
            assert!(src.is_live(id));
            for _ in 0..20 {
                if let Some(p) = src.sample_for(id) {
                    assert!(!dead.contains(&p), "sampled dead peer {p}");
                }
            }
        }
        // Dead and unknown askers have no view to sample from.
        let dead_id = *dead.iter().next().unwrap();
        assert!(src.sample_for(dead_id).is_none());
        assert!(src.sample_for(NodeId::new(10_000)).is_none());
    }

    #[test]
    fn engine_source_runs_on_the_sharded_engine() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap();
        let mut sim = ShardedSimulation::new(config, 11, 2);
        sim.add_node([]);
        sim.add_node([pss_core::NodeDescriptor::fresh(NodeId::new(0))]);
        pss_sim::Engine::add_nodes_with_random_contacts(&mut sim, 30, 3);
        let before = pss_sim::Engine::cycle(&sim);
        let mut src = EngineSampleSource::new(&mut sim, 1);
        for _ in 0..5 {
            src.advance_round();
        }
        let live = src.live_ids().unwrap();
        assert_eq!(live.len(), 32);
        let p = live
            .iter()
            .find_map(|&id| src.sample_for(id))
            .expect("some converged node can sample");
        assert!(src.is_live(p));
        assert_eq!(pss_sim::Engine::cycle(src.engine()), before + 5);
    }
}
