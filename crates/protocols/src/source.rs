//! Peer sources: where applications get their gossip partners from.

use pss_core::NodeId;
use pss_sim::Simulation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A per-node peer supply, the application-side face of the peer sampling
/// service: "provide a participating node … with a subset of peers … to send
/// gossip messages to".
pub trait SampleSource {
    /// Draws a peer for `node`, or `None` if the service knows none.
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId>;

    /// Advances the underlying membership layer by one round, if it has one.
    /// The default does nothing (static sources).
    fn advance_round(&mut self) {}
}

/// The gossip-based service: peers come from each node's partial view in a
/// live [`Simulation`], and the overlay keeps evolving one cycle per
/// application round.
pub struct SimSampleSource<'a> {
    sim: &'a mut Simulation,
}

impl<'a> SimSampleSource<'a> {
    /// Wraps a simulation as a peer source.
    pub fn new(sim: &'a mut Simulation) -> Self {
        SimSampleSource { sim }
    }
}

impl SampleSource for SimSampleSource<'_> {
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId> {
        self.sim.get_peer(node)
    }

    fn advance_round(&mut self) {
        self.sim.run_cycle();
    }
}

/// The ideal service: independent uniform samples over the full membership
/// `0..n`, excluding the asking node. The baseline all gossip theory
/// assumes.
#[derive(Debug, Clone)]
pub struct OracleSource {
    n: u64,
    rng: SmallRng,
}

impl OracleSource {
    /// Creates an oracle over nodes `0..n`.
    pub fn new(n: usize, seed: u64) -> Self {
        OracleSource {
            n: n as u64,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl SampleSource for OracleSource {
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId> {
        if self.n <= 1 {
            return None;
        }
        // Uniform over the other n-1 nodes.
        let r = self.rng.random_range(0..self.n - 1);
        Some(NodeId::new(if r >= node.as_u64() { r + 1 } else { r }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::{PolicyTriple, ProtocolConfig};
    use pss_sim::scenario;

    #[test]
    fn oracle_excludes_self_and_covers_all() {
        let mut o = OracleSource::new(10, 3);
        let asker = NodeId::new(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let p = o.sample_for(asker).unwrap();
            assert_ne!(p, asker);
            assert!(p.as_u64() < 10);
            seen.insert(p);
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn oracle_trivial_group() {
        let mut o = OracleSource::new(1, 3);
        assert!(o.sample_for(NodeId::new(0)).is_none());
        let mut o = OracleSource::new(0, 3);
        assert!(o.sample_for(NodeId::new(0)).is_none());
    }

    #[test]
    fn sim_source_draws_from_views_and_advances() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 5).unwrap();
        let mut sim = scenario::random_overlay(&config, 30, 4);
        let before = sim.cycle();
        let mut src = SimSampleSource::new(&mut sim);
        let p = src.sample_for(NodeId::new(0)).unwrap();
        assert!(p.as_u64() < 30);
        src.advance_round();
        assert_eq!(sim.cycle(), before + 1);
    }
}
