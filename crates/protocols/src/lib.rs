//! Gossip applications built on the peer sampling service.
//!
//! The paper motivates the peer sampling service with the protocols that
//! consume it: epidemic information dissemination, aggregation, topology
//! management. This crate implements the two canonical consumers —
//! [`broadcast`] (SIR-style rumor spreading) and [`aggregation`] (push-pull
//! averaging) — as *liveness-aware* clients of any sampler:
//!
//! - [`EngineSampleSource`] runs them on any [`pss_sim::Engine`] — the
//!   sequential cycle simulator, the sharded cycle engine, or the sharded
//!   event engine — sampling only live peers from each node's view.
//! - [`SimSampleSource`] hands out raw view entries of the sequential
//!   simulator, dead links included, so the cost of stale views is visible
//!   as `wasted` deliveries.
//! - [`OracleSource`] is the ideal uniform sampler all epidemic theory
//!   assumes. *Caveat:* the oracle covers a fixed id range `0..n`; askers
//!   outside that range (late joiners) are served uniformly from the whole
//!   group — an earlier version silently clipped id `n-1` from their
//!   support, biasing every "ideal baseline" number measured under churn.
//!
//! Both protocols denominate their headline metrics by the **live**
//! population: coverage is informed-live over live, variance is taken over
//! live values only, deliveries to dead ids count as `wasted`, and joiners
//! enter uninformed (broadcast) or at a configured default value
//! (aggregation).
//!
//! # Running under a membership schedule
//!
//! [`workload::run_under_workload`] drives both protocols from a compiled
//! [`pss_sim::Workload`] schedule: the same churn/kill/flash/partition
//! trajectory that produces the overlay's `PeriodRecord`s also yields one
//! [`workload::AppPeriodRow`] per period (delivery ratio, redundancy,
//! wasted traffic, variance decay), bit-identical across worker counts on
//! the sharded engines. The same schedule string also drives the loopback
//! UDP cluster in `pss-net`, whose runtime disseminates the same rumor with
//! real app frames.
//!
//! # Metrics
//!
//! | metric | meaning |
//! |--------|---------|
//! | `coverage` / `delivery_ratio` | informed live nodes / live nodes |
//! | `rounds_to_reach(f)` / `rounds_to_99` | first round with coverage ≥ f |
//! | `redundant` | pushes landing on already-informed live nodes |
//! | `wasted` | pushes/exchanges addressed to dead ids |
//! | `variance_per_round` | value variance over live nodes |
//! | `decay_factor` | per-round variance decay, 0.0 on exact convergence |
//!
//! # Examples
//!
//! ```
//! use pss_core::{PolicyTriple, ProtocolConfig};
//! use pss_protocols::{broadcast, EngineSampleSource};
//! use pss_sim::{scenario, Engine};
//!
//! let config = ProtocolConfig::new(PolicyTriple::newscast(), 15)?;
//! let mut sim = scenario::random_overlay(&config, 200, 9);
//! sim.run_cycles(10);
//! Engine::kill_random(&mut sim, 50);
//!
//! let origin = sim.alive_ids()[0];
//! let mut source = EngineSampleSource::new(&mut sim, 7);
//! let report = broadcast::run(
//!     &mut source,
//!     200,
//!     origin,
//!     &broadcast::BroadcastConfig::default(),
//! );
//! // Coverage is a fraction of the 150 live nodes, not the 200 ids.
//! assert!(report.coverage() > 0.95);
//! # Ok::<(), pss_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod broadcast;
pub mod workload;

mod source;

pub use source::{EngineSampleSource, OracleSource, SampleSource, SimSampleSource};
pub use workload::{run_under_workload, AppConfig, AppPeriodRow, AppReport, Sampler};
