//! Gossip applications built on the peer sampling service.
//!
//! The paper motivates the peer sampling service with the protocols that
//! consume it: epidemic information dissemination, aggregation, topology
//! management. This crate implements the two canonical consumers —
//! [`broadcast`] (SIR-style rumor spreading) and [`aggregation`] (push-pull
//! averaging) — against *any* sampler, so the effect of sampling quality can
//! be measured directly: run the same workload over a gossip overlay
//! ([`SimSampleSource`]) and over the ideal uniform oracle
//! ([`OracleSource`]) and compare.
//!
//! # Examples
//!
//! ```
//! use pss_core::{PolicyTriple, ProtocolConfig};
//! use pss_protocols::{broadcast, OracleSource, SimSampleSource};
//! use pss_sim::scenario;
//!
//! let config = ProtocolConfig::new(PolicyTriple::newscast(), 15)?;
//! let mut sim = scenario::random_overlay(&config, 200, 9);
//! sim.run_cycles(10);
//!
//! let report = broadcast::run(
//!     &mut SimSampleSource::new(&mut sim),
//!     200,
//!     pss_core::NodeId::new(0),
//!     &broadcast::BroadcastConfig::default(),
//! );
//! assert!(report.coverage() > 0.95);
//! # Ok::<(), pss_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod broadcast;

mod source;

pub use source::{OracleSource, SampleSource, SimSampleSource};
