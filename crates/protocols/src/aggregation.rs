//! Push-pull gossip averaging over a peer sampling service.
//!
//! The aggregation protocol of Jelasity–Montresor (cited as the paper's
//! references [14, 16, 20]): every node holds a value; each round every node
//! draws a peer and both replace their values with the average. Under
//! uniform sampling, the empirical variance decays exponentially (by a
//! factor of about `2√e ≈ 3.30` per round); under a skewed sampler the decay
//! is slower — a direct, application-level measurement of sampling quality.
//!
//! The run is membership-aware: only currently-live nodes
//! ([`SampleSource::live_ids`]) initiate and answer exchanges, the variance
//! trajectory is computed over the live population only, and an exchange
//! aimed at a dead peer is skipped and tallied as
//! [`wasted`](AggregationReport::wasted) — averaging with a corpse's stale
//! value would silently leak mass out of the live population.

use pss_core::NodeId;
use pss_stats::Summary;

use crate::SampleSource;

/// Result of an averaging run.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationReport {
    variance_per_round: Vec<f64>,
    mean: f64,
    wasted: u64,
}

impl AggregationReport {
    /// Population variance of the *live* node values after each round;
    /// index 0 is the initial variance.
    pub fn variance_per_round(&self) -> &[f64] {
        &self.variance_per_round
    }

    /// Rounds executed.
    pub fn rounds(&self) -> usize {
        self.variance_per_round.len().saturating_sub(1)
    }

    /// The mean of the initial live values — with a stable membership,
    /// gossip averaging conserves this mass.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Exchanges that targeted a dead peer and were skipped.
    pub fn wasted(&self) -> u64 {
        self.wasted
    }

    /// Empirical per-round variance decay factor (geometric mean over the
    /// run): `(var_T / var_0)^(1/T)`. Smaller is faster convergence;
    /// uniform sampling achieves ≈ 1/(2√e) ≈ 0.303. Exact convergence
    /// (`var_T == 0`) reports 0.0 — the best possible outcome; `NaN` is
    /// reserved for undefined cases (no rounds, or a non-positive initial
    /// variance that leaves nothing to decay).
    pub fn decay_factor(&self) -> f64 {
        let first = *self.variance_per_round.first().unwrap_or(&0.0);
        let last = *self.variance_per_round.last().unwrap_or(&0.0);
        let t = self.rounds();
        if t == 0 || first <= 0.0 {
            return f64::NAN;
        }
        if last <= 0.0 {
            return 0.0;
        }
        (last / first).powf(1.0 / t as f64)
    }
}

/// Runs `rounds` rounds of push-pull averaging over `values` (node `i`
/// holds `values[i]`), drawing peers from `source`. Returns the variance
/// trajectory; `values` is left in its final state.
///
/// When the source tracks membership, only live ids within
/// `0..values.len()` participate; exchanges with dead peers are skipped and
/// counted as [`wasted`](AggregationReport::wasted).
///
/// # Examples
///
/// ```
/// use pss_protocols::{aggregation, OracleSource};
///
/// let mut values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
/// let mut oracle = OracleSource::new(1000, 3);
/// let report = aggregation::run(&mut oracle, &mut values, 20);
/// // Variance collapses towards zero; every node now holds ≈ the mean.
/// assert!(report.variance_per_round().last().unwrap() < &1e-3);
/// assert!((report.mean() - 499.5).abs() < 1e-6);
/// ```
pub fn run(source: &mut impl SampleSource, values: &mut [f64], rounds: usize) -> AggregationReport {
    let n = values.len();
    // Live participants within the value table; static sources mean 0..n.
    fn participants(source: &impl SampleSource, n: usize) -> Vec<usize> {
        match source.live_ids() {
            Some(ids) => ids
                .into_iter()
                .map(NodeId::as_index)
                .filter(|&i| i < n)
                .collect(),
            None => (0..n).collect(),
        }
    }
    fn live_variance(values: &[f64], live: &[usize]) -> f64 {
        let s: Summary = live.iter().map(|&i| values[i]).collect();
        s.population_variance()
    }

    let mut live = participants(source, n);
    let mean = if live.is_empty() {
        0.0
    } else {
        live.iter().map(|&i| values[i]).sum::<f64>() / live.len() as f64
    };
    let mut wasted = 0u64;
    let mut history = vec![live_variance(values, &live)];
    let mut live_bit = vec![false; n];
    for &i in &live {
        live_bit[i] = true;
    }
    for _ in 0..rounds {
        for &i in &live {
            let node = NodeId::new(i as u64);
            if let Some(peer) = source.sample_for(node) {
                let j = peer.as_index();
                if j >= n || !live_bit[j] {
                    wasted += 1;
                    continue;
                }
                if j != i {
                    let avg = (values[i] + values[j]) / 2.0;
                    values[i] = avg;
                    values[j] = avg;
                }
            }
        }
        source.advance_round();
        live = participants(source, n);
        live_bit.iter_mut().for_each(|b| *b = false);
        for &i in &live {
            live_bit[i] = true;
        }
        history.push(live_variance(values, &live));
    }
    AggregationReport {
        variance_per_round: history,
        mean,
        wasted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineSampleSource, OracleSource, SimSampleSource};
    use pss_core::{PolicyTriple, ProtocolConfig};
    use pss_sim::{scenario, Engine};

    #[test]
    fn averaging_conserves_mass() {
        let mut values: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect();
        let expected_mean = values.iter().sum::<f64>() / 100.0;
        let mut oracle = OracleSource::new(100, 1);
        let report = run(&mut oracle, &mut values, 15);
        assert!((report.mean() - expected_mean).abs() < 1e-9);
        let final_mean = values.iter().sum::<f64>() / 100.0;
        assert!((final_mean - expected_mean).abs() < 1e-6);
        assert_eq!(report.wasted(), 0);
    }

    #[test]
    fn variance_decays_monotonically_under_oracle() {
        let mut values: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let mut oracle = OracleSource::new(500, 2);
        let report = run(&mut oracle, &mut values, 25);
        let v = report.variance_per_round();
        assert!(v.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        assert!(v.last().unwrap() < &1e-6);
    }

    #[test]
    fn oracle_decay_near_theoretical_rate() {
        // Theory: E[var_{t+1}] = var_t / (2*sqrt(e)) ~ 0.303 var_t for
        // push-pull averaging with uniform random pairs.
        let mut values: Vec<f64> = (0..2000).map(|i| ((i % 2) * 1000) as f64).collect();
        let mut oracle = OracleSource::new(2000, 3);
        let report = run(&mut oracle, &mut values, 10);
        let decay = report.decay_factor();
        assert!(
            (0.2..0.45).contains(&decay),
            "decay factor {decay} out of expected range"
        );
    }

    #[test]
    fn exact_convergence_reports_zero_decay() {
        // Two nodes fully converge in one push-pull exchange: variance hits
        // exactly zero, which is the best possible outcome — the decay
        // factor must read 0.0, not NaN.
        let mut values = [0.0, 4.0];
        let mut oracle = OracleSource::new(2, 1);
        let report = run(&mut oracle, &mut values, 1);
        assert_eq!(values, [2.0, 2.0]);
        assert_eq!(*report.variance_per_round().last().unwrap(), 0.0);
        assert_eq!(report.decay_factor(), 0.0);
    }

    #[test]
    fn gossip_overlay_converges_too() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).unwrap();
        let mut sim = scenario::random_overlay(&config, 200, 5);
        sim.run_cycles(10);
        let mut values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let report = run(&mut SimSampleSource::new(&mut sim), &mut values, 30);
        assert!(
            report.variance_per_round().last().unwrap() < &1e-2,
            "variance stuck at {:?}",
            report.variance_per_round().last()
        );
    }

    #[test]
    fn dead_peers_waste_exchanges_and_mass_stays_on_the_living() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).unwrap();
        let mut sim = scenario::random_overlay(&config, 120, 4);
        sim.run_cycles(10);
        Engine::kill_random(&mut sim, 60);
        let live: Vec<usize> = sim.alive_ids().iter().map(|id| id.as_index()).collect();
        let mut values: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let live_sum: f64 = live.iter().map(|&i| values[i]).sum();
        // Raw-view source: dead links get sampled and must be skipped.
        let mut src = SimSampleSource::new(&mut sim);
        let report = run(&mut src, &mut values, 3);
        assert!(report.wasted() > 0, "no wasted exchange right after a kill");
        let live_sum_after: f64 = live.iter().map(|&i| values[i]).sum();
        assert!(
            (live_sum - live_sum_after).abs() < 1e-6,
            "mass leaked: {live_sum} -> {live_sum_after}"
        );
        // The engine source filters dead peers up front: zero waste.
        let mut values: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let mut src = EngineSampleSource::new(&mut sim, 9);
        let report = run(&mut src, &mut values, 3);
        assert_eq!(report.wasted(), 0);
    }

    #[test]
    fn empty_and_single_populations() {
        let mut oracle = OracleSource::new(0, 1);
        let report = run(&mut oracle, &mut [], 5);
        assert_eq!(report.mean(), 0.0);
        assert!(report.decay_factor().is_nan());

        let mut oracle = OracleSource::new(1, 1);
        let mut one = [42.0];
        let report = run(&mut oracle, &mut one, 5);
        assert_eq!(report.mean(), 42.0);
        assert_eq!(one[0], 42.0);
    }

    #[test]
    fn zero_rounds_records_initial_variance_only() {
        let mut oracle = OracleSource::new(10, 1);
        let mut values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let report = run(&mut oracle, &mut values, 0);
        assert_eq!(report.rounds(), 0);
        assert_eq!(report.variance_per_round().len(), 1);
        assert!(report.variance_per_round()[0] > 0.0);
        assert!(report.decay_factor().is_nan());
    }
}
