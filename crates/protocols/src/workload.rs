//! Application protocols driven by compiled membership-dynamics schedules.
//!
//! [`run_under_workload`] rides the overlay workload driver
//! ([`pss_sim::workload::run_workload_observed`]): the compiled schedule
//! applies its kills/joins/partitions and runs one gossip period per step,
//! and after every period the application layer executes one broadcast
//! round and one push-pull averaging round *over the period's live view
//! rows*. The overlay rows are bit-identical per `(seed, shard_count)` at
//! any worker count, and the application layer draws from its own seeded
//! RNG in row order — so the per-period [`AppPeriodRow`]s inherit the same
//! determinism contract on every engine.
//!
//! Two samplers make sampling quality measurable under identical membership
//! trajectories: [`Sampler::Overlay`] pushes to raw view entries (dead
//! links waste deliveries, exactly as they would on the wire), while
//! [`Sampler::Oracle`] draws uniformly from the true live set — the ideal
//! baseline every epidemic-analysis result assumes.

use pss_core::NodeId;
use pss_sim::workload::{run_workload_observed, CompiledWorkload, Op, Partition, PeriodRecord};
use pss_sim::WorkloadTarget;
use pss_stats::Summary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Where the application layer gets its per-period gossip partners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// The node's own partial view, dead links included — the deployed
    /// behavior of a peer-sampling consumer.
    Overlay,
    /// Uniform over the true live membership — the ideal baseline.
    Oracle,
}

impl Sampler {
    /// Lower-case label for tables and bench ids.
    pub fn label(self) -> &'static str {
        match self {
            Sampler::Overlay => "overlay",
            Sampler::Oracle => "oracle",
        }
    }
}

/// Application-layer parameters for [`run_under_workload`].
#[derive(Debug, Clone, Copy)]
pub struct AppConfig {
    /// Peers each informed node pushes the rumor to per period.
    pub fanout: usize,
    /// The node that injects the rumor (informed from period 1 if live).
    pub origin: NodeId,
    /// Seed of the application's own RNG; never touches the engine's.
    pub seed: u64,
    /// Peer supply for both protocols.
    pub sampler: Sampler,
    /// Initial aggregation value per initial node.
    pub initial_value: fn(NodeId) -> f64,
    /// Aggregation value joiners start from.
    pub joiner_value: f64,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            fanout: 2,
            origin: NodeId::new(0),
            seed: 0xa11c_a57e_5eed,
            sampler: Sampler::Overlay,
            // Bimodal start: half at 0, half at 100, mean 50 — the classic
            // worst case for averaging, with joiners entering at the mean.
            initial_value: |id| ((id.as_u64() % 2) * 100) as f64,
            joiner_value: 50.0,
        }
    }
}

/// One period of application-level observables, produced alongside the
/// overlay [`PeriodRecord`] for the same period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppPeriodRow {
    /// 1-based period index, aligned with [`PeriodRecord::period`].
    pub period: u64,
    /// Live nodes after this period.
    pub live: usize,
    /// Informed *live* nodes after this period.
    pub informed: usize,
    /// Rumor pushes that landed on a live node this period.
    pub delivered: u64,
    /// Pushes that landed on an already-informed live node.
    pub redundant: u64,
    /// Pushes addressed to a dead id this period.
    pub wasted: u64,
    /// App messages (pushes and averaging exchanges) suppressed by an
    /// active partition this period — the application rides the same
    /// network the overlay does.
    pub blocked: u64,
    /// Averaging exchanges that targeted a dead peer this period.
    pub agg_wasted: u64,
    /// Value variance over the live population after this period.
    pub variance: f64,
}

/// Application-level result of a workload run: one [`AppPeriodRow`] per
/// period plus the derived dissemination/aggregation metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    rows: Vec<AppPeriodRow>,
    initial_variance: f64,
}

impl AppReport {
    /// The per-period application rows.
    pub fn rows(&self) -> &[AppPeriodRow] {
        &self.rows
    }

    /// Variance of the initial values over the initial population.
    pub fn initial_variance(&self) -> f64 {
        self.initial_variance
    }

    /// Final informed fraction of the live population.
    pub fn delivery_ratio(&self) -> f64 {
        match self.rows.last() {
            Some(row) if row.live > 0 => row.informed as f64 / row.live as f64,
            _ => 0.0,
        }
    }

    /// First period by which ≥ 99 % of the then-live population was
    /// informed, if ever.
    pub fn rounds_to_99(&self) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.live > 0 && r.informed as f64 >= (0.99 * r.live as f64).ceil())
            .map(|r| r.period)
    }

    /// Redundant fraction of all live deliveries.
    pub fn redundancy(&self) -> f64 {
        let delivered: u64 = self.rows.iter().map(|r| r.delivered).sum();
        if delivered == 0 {
            return 0.0;
        }
        self.rows.iter().map(|r| r.redundant).sum::<u64>() as f64 / delivered as f64
    }

    /// Total rumor pushes that hit dead ids.
    pub fn wasted(&self) -> u64 {
        self.rows.iter().map(|r| r.wasted).sum()
    }

    /// Total app messages suppressed by partitions.
    pub fn blocked(&self) -> u64 {
        self.rows.iter().map(|r| r.blocked).sum()
    }

    /// Total averaging exchanges that hit dead peers.
    pub fn agg_wasted(&self) -> u64 {
        self.rows.iter().map(|r| r.agg_wasted).sum()
    }

    /// Per-period variance decay factor over the whole run, with the same
    /// conventions as
    /// [`AggregationReport::decay_factor`](crate::aggregation::AggregationReport::decay_factor):
    /// 0.0 on exact convergence, `NaN` when undefined.
    pub fn decay_factor(&self) -> f64 {
        let t = self.rows.len();
        let last = match self.rows.last() {
            Some(row) => row.variance,
            None => return f64::NAN,
        };
        if self.initial_variance <= 0.0 {
            return f64::NAN;
        }
        if last <= 0.0 {
            return 0.0;
        }
        (last / self.initial_variance).powf(1.0 / t as f64)
    }
}

/// Runs the compiled workload on `target` while a broadcast and an
/// averaging run ride every period, returning the overlay records and the
/// application rows side by side. See the [module docs](self) for the
/// execution model and determinism contract.
pub fn run_under_workload<T: WorkloadTarget>(
    target: &mut T,
    compiled: &CompiledWorkload,
    view_size: usize,
    app: &AppConfig,
) -> (Vec<PeriodRecord>, AppReport) {
    let id_space = compiled.id_space;
    let mut rng = SmallRng::seed_from_u64(app.seed ^ 0x000a_2211_ed70_ca57);
    let mut informed = vec![false; id_space];
    let mut present = vec![false; id_space];
    let mut values = vec![0.0f64; id_space];
    let mut live_bit = vec![false; id_space];
    for i in 0..compiled.initial_nodes.min(id_space) {
        present[i] = true;
        values[i] = (app.initial_value)(NodeId::new(i as u64));
    }
    let initial_variance = {
        let s: Summary = values[..compiled.initial_nodes.min(id_space)]
            .iter()
            .copied()
            .collect();
        s.population_variance()
    };
    if app.origin.as_index() < compiled.initial_nodes {
        informed[app.origin.as_index()] = true;
    }

    let mut app_rows: Vec<AppPeriodRow> = Vec::with_capacity(compiled.steps.len());
    let mut senders: Vec<usize> = Vec::new();
    let mut partition: Option<Partition> = None;

    let app_round_ns = pss_telemetry::global().histogram(
        "pss_app_round_ns",
        "Wall time of one application round (broadcast + averaging) over a period's rows, nanoseconds",
    );
    let records = run_workload_observed(target, compiled, view_size, &mut |period, rows, _| {
        let round_started = std::time::Instant::now();
        // Mirror the partition the engine gossiped this period under: its
        // ops applied at the boundary, before the period ran.
        for op in &compiled.steps[period as usize - 1].ops {
            if let Op::SetPartition(p) = op {
                partition = *p;
            }
        }
        // Lossy matrices draw from the app RNG per cross-group message;
        // total blackouts and same-group traffic consume no randomness.
        let blocks = |a: usize, b: usize, rng: &mut SmallRng| {
            partition.is_some_and(|p| p.drops(NodeId::new(a as u64), NodeId::new(b as u64), rng))
        };
        // Admit joiners: first appearance in the live rows, uninformed and
        // holding the configured starting value.
        for (id, _) in rows {
            let idx = id.as_index();
            if !present[idx] {
                present[idx] = true;
                values[idx] = app.joiner_value;
            }
        }
        live_bit.iter_mut().for_each(|b| *b = false);
        for (id, _) in rows {
            live_bit[id.as_index()] = true;
        }

        // Uniform live pick excluding `self_idx`, for the oracle sampler.
        fn oracle_pick(
            rng: &mut SmallRng,
            rows: &[(NodeId, Vec<NodeId>)],
            self_idx: usize,
        ) -> Option<usize> {
            if rows.len() < 2 {
                return None;
            }
            let r = rng.random_range(0..rows.len() - 1);
            let idx = rows[r].0.as_index();
            if idx == self_idx {
                Some(rows[rows.len() - 1].0.as_index())
            } else {
                Some(idx)
            }
        }

        // One broadcast round: the senders are the nodes informed at the
        // start of the period (fresh recipients forward next period).
        let mut delivered = 0u64;
        let mut redundant = 0u64;
        let mut wasted = 0u64;
        let mut blocked = 0u64;
        senders.clear();
        senders.extend(
            rows.iter()
                .map(|(id, _)| id.as_index())
                .filter(|&i| informed[i]),
        );
        for &sender in &senders {
            let targets = &rows[rows
                .binary_search_by_key(&sender, |(id, _)| id.as_index())
                .expect("sender comes from rows")]
            .1;
            for _ in 0..app.fanout {
                let peer = match app.sampler {
                    Sampler::Overlay => {
                        if targets.is_empty() {
                            None
                        } else {
                            Some(targets[rng.random_range(0..targets.len())].as_index())
                        }
                    }
                    Sampler::Oracle => oracle_pick(&mut rng, rows, sender),
                };
                let Some(peer) = peer else { continue };
                if blocks(sender, peer, &mut rng) {
                    blocked += 1;
                    continue;
                }
                if peer >= id_space || !live_bit[peer] {
                    wasted += 1;
                    continue;
                }
                delivered += 1;
                if informed[peer] {
                    redundant += 1;
                } else {
                    informed[peer] = true;
                }
            }
        }

        // One push-pull averaging round over the live rows, in id order.
        let mut agg_wasted = 0u64;
        for (id, targets) in rows {
            let i = id.as_index();
            let peer = match app.sampler {
                Sampler::Overlay => {
                    if targets.is_empty() {
                        None
                    } else {
                        Some(targets[rng.random_range(0..targets.len())].as_index())
                    }
                }
                Sampler::Oracle => oracle_pick(&mut rng, rows, i),
            };
            let Some(j) = peer else { continue };
            if blocks(i, j, &mut rng) {
                blocked += 1;
                continue;
            }
            if j >= id_space || !live_bit[j] {
                agg_wasted += 1;
                continue;
            }
            if j != i {
                let avg = (values[i] + values[j]) / 2.0;
                values[i] = avg;
                values[j] = avg;
            }
        }

        let variance = {
            let s: Summary = rows.iter().map(|(id, _)| values[id.as_index()]).collect();
            s.population_variance()
        };
        app_rows.push(AppPeriodRow {
            period,
            live: rows.len(),
            informed: rows
                .iter()
                .filter(|(id, _)| informed[id.as_index()])
                .count(),
            delivered,
            redundant,
            wasted,
            blocked,
            agg_wasted,
            variance,
        });
        if pss_telemetry::enabled() {
            app_round_ns.record(round_started.elapsed().as_nanos() as u64);
        }
    });

    (
        records,
        AppReport {
            rows: app_rows,
            initial_variance,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_core::{NodeDescriptor, PolicyTriple, ProtocolConfig};
    use pss_sim::{EventConfig, LatencyModel, ShardedEventSimulation, ShardedSimulation, Workload};

    const VIEW: usize = 10;
    const NODES: usize = 96;

    fn protocol() -> ProtocolConfig {
        ProtocolConfig::new(PolicyTriple::newscast(), VIEW).unwrap()
    }

    fn seeds(i: u64) -> Vec<NodeDescriptor> {
        if i == 0 {
            Vec::new()
        } else {
            vec![NodeDescriptor::fresh(NodeId::new(i / 2))]
        }
    }

    fn cycle_engine(workers: usize) -> ShardedSimulation<pss_sim::BoxedNode> {
        let mut sim = ShardedSimulation::new(protocol(), 11, 2);
        for i in 0..NODES as u64 {
            sim.add_node(seeds(i));
        }
        sim.set_workers(workers);
        sim
    }

    fn event_engine(workers: usize) -> ShardedEventSimulation<pss_sim::BoxedNode> {
        let event_config = EventConfig {
            period: 1000,
            jitter: 200,
            latency: LatencyModel::Uniform { min: 10, max: 200 },
            loss_probability: 0.01,
        };
        let mut sim = ShardedEventSimulation::new(protocol(), event_config, 11, 2).unwrap();
        for i in 0..NODES as u64 {
            sim.add_node(seeds(i));
        }
        sim.set_workers(workers);
        sim
    }

    fn acceptance() -> CompiledWorkload {
        Workload::parse("quiet:5,kill:0.3,churn:0.01x15", 7)
            .unwrap()
            .compile(NODES)
    }

    #[test]
    fn app_rows_bit_identical_across_worker_counts() {
        let compiled = acceptance();
        let app = AppConfig::default();
        let mut baseline = None;
        for workers in [1usize, 2, 4] {
            let mut sim = cycle_engine(workers);
            let (records, report) = run_under_workload(&mut sim, &compiled, VIEW, &app);
            assert_eq!(records.len(), compiled.steps.len());
            match &baseline {
                None => baseline = Some(report),
                Some(b) => assert_eq!(b, &report, "cycle rows diverged at {workers} workers"),
            }
        }
        let mut baseline = None;
        for workers in [1usize, 2, 4] {
            let mut sim = event_engine(workers);
            let (_, report) = run_under_workload(&mut sim, &compiled, VIEW, &app);
            match &baseline {
                None => baseline = Some(report),
                Some(b) => assert_eq!(b, &report, "event rows diverged at {workers} workers"),
            }
        }
    }

    #[test]
    fn oracle_sampler_floods_a_quiet_overlay() {
        let compiled = Workload::parse("quiet:12", 3).unwrap().compile(NODES);
        let app = AppConfig {
            sampler: Sampler::Oracle,
            ..AppConfig::default()
        };
        let mut sim = cycle_engine(1);
        let (_, report) = run_under_workload(&mut sim, &compiled, VIEW, &app);
        assert_eq!(report.delivery_ratio(), 1.0);
        assert!(report.rounds_to_99().is_some());
        assert_eq!(report.wasted(), 0, "oracle never pushes to the dead");
        assert!(report.redundancy() > 0.0);
        // Averaging over a fixed population converges.
        let last = report.rows().last().unwrap();
        assert!(last.variance < report.initial_variance() / 10.0);
        let d = report.decay_factor();
        assert!(d < 0.8, "decay factor {d}");
    }

    #[test]
    fn partitions_block_app_traffic_until_heal() {
        // Table-1-style: the overlay splits in two for the first 6
        // periods. Even the oracle sampler cannot push across the cut —
        // the app rides the same network — so coverage stalls inside the
        // origin's group and only floods the rest after the heal.
        let compiled = Workload::parse("part:2x6,quiet:10", 5)
            .unwrap()
            .compile(NODES);
        let app = AppConfig {
            sampler: Sampler::Oracle,
            ..AppConfig::default()
        };
        let mut sim = cycle_engine(1);
        let (records, report) = run_under_workload(&mut sim, &compiled, VIEW, &app);
        assert!(report.blocked() > 0, "no app message ever hit the cut");
        let mid = &report.rows()[3]; // period 4, mid-partition
        assert!(
            mid.informed < mid.live / 2 + mid.live % 2 + 1,
            "rumor crossed the partition: {mid:?}"
        );
        assert!(records[3].partitioned && !records.last().unwrap().partitioned);
        assert_eq!(report.delivery_ratio(), 1.0, "heal must re-flood");
        // Once healed, nothing is blocked any more.
        assert_eq!(report.rows().last().unwrap().blocked, 0);
    }

    #[test]
    fn overlay_sampler_wastes_on_catastrophe_and_joiners_start_cold() {
        let compiled = acceptance();
        let app = AppConfig::default();
        let mut sim = cycle_engine(2);
        let (records, report) = run_under_workload(&mut sim, &compiled, VIEW, &app);
        // The kill at period 6 leaves stale view entries: pushes and
        // exchanges must observably waste on them.
        assert!(report.wasted() + report.agg_wasted() > 0);
        // Informed never exceeds live, and the delivery ratio is over live.
        for row in report.rows() {
            assert!(row.informed <= row.live, "{row:?}");
        }
        assert!(report.delivery_ratio() > 0.9, "{}", report.delivery_ratio());
        // Overlay records rode along unchanged.
        assert!(records.last().unwrap().component_fraction() > 0.95);
    }
}
