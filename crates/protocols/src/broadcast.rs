//! Epidemic broadcast (rumor spreading) over a peer sampling service.
//!
//! The classic push-infect model: every informed node pushes the rumor to
//! `fanout` sampled peers per round. With a uniform sampler this floods the
//! group in `O(log N)` rounds with high probability; with a gossip sampler
//! the speed and final coverage depend on the overlay's properties — exactly
//! the dependence the paper's evaluation quantifies.

use pss_core::NodeId;

use crate::SampleSource;

/// Broadcast workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastConfig {
    /// Peers each informed node pushes to per round.
    pub fanout: usize,
    /// Hard stop, in rounds.
    pub max_rounds: usize,
    /// Stop as soon as a round infects nobody new.
    pub stop_when_quiescent: bool,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            fanout: 2,
            max_rounds: 100,
            stop_when_quiescent: true,
        }
    }
}

/// Result of a broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastReport {
    informed_per_round: Vec<usize>,
    population: usize,
}

impl BroadcastReport {
    /// Cumulative number of informed nodes after each round; index 0 is the
    /// state before the first round (always 1, the origin).
    pub fn informed_per_round(&self) -> &[usize] {
        &self.informed_per_round
    }

    /// Rounds actually executed.
    pub fn rounds(&self) -> usize {
        self.informed_per_round.len().saturating_sub(1)
    }

    /// Final fraction of the population informed, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        *self.informed_per_round.last().unwrap_or(&0) as f64 / self.population as f64
    }

    /// First round by which at least `fraction` of the population was
    /// informed, if ever.
    pub fn rounds_to_reach(&self, fraction: f64) -> Option<usize> {
        let target = (fraction * self.population as f64).ceil() as usize;
        self.informed_per_round.iter().position(|&i| i >= target)
    }
}

/// Runs a push broadcast from `origin` over a population of `n` nodes
/// (`NodeId` 0..n), drawing peers from `source`.
///
/// Each round: every currently informed node draws `config.fanout` peers and
/// informs them; then the source's membership layer advances one round.
///
/// # Examples
///
/// ```
/// use pss_core::NodeId;
/// use pss_protocols::{broadcast, OracleSource};
///
/// let mut oracle = OracleSource::new(1000, 7);
/// let report = broadcast::run(
///     &mut oracle,
///     1000,
///     NodeId::new(0),
///     &broadcast::BroadcastConfig::default(),
/// );
/// assert_eq!(report.coverage(), 1.0);
/// assert!(report.rounds() < 30);
/// ```
pub fn run(
    source: &mut impl SampleSource,
    n: usize,
    origin: NodeId,
    config: &BroadcastConfig,
) -> BroadcastReport {
    let mut informed = vec![false; n];
    let mut informed_count = 0usize;
    if origin.as_index() < n {
        informed[origin.as_index()] = true;
        informed_count = 1;
    }
    let mut history = vec![informed_count];

    for _ in 0..config.max_rounds {
        if informed_count == n {
            break;
        }
        let senders: Vec<NodeId> = informed
            .iter()
            .enumerate()
            .filter(|(_, &inf)| inf)
            .map(|(i, _)| NodeId::new(i as u64))
            .collect();
        let mut newly = 0usize;
        for sender in senders {
            for _ in 0..config.fanout {
                if let Some(peer) = source.sample_for(sender) {
                    let idx = peer.as_index();
                    if idx < n && !informed[idx] {
                        informed[idx] = true;
                        informed_count += 1;
                        newly += 1;
                    }
                }
            }
        }
        source.advance_round();
        history.push(informed_count);
        if config.stop_when_quiescent && newly == 0 {
            break;
        }
    }

    BroadcastReport {
        informed_per_round: history,
        population: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleSource, SimSampleSource};
    use pss_core::{PolicyTriple, ProtocolConfig};
    use pss_sim::scenario;

    #[test]
    fn oracle_broadcast_reaches_everyone() {
        let mut oracle = OracleSource::new(500, 1);
        let report = run(
            &mut oracle,
            500,
            NodeId::new(3),
            &BroadcastConfig::default(),
        );
        assert_eq!(report.coverage(), 1.0);
        // log-time dissemination: fanout 2 should finish way below 50 rounds.
        assert!(report.rounds() < 30, "took {} rounds", report.rounds());
        // Monotone non-decreasing history starting at 1.
        assert_eq!(report.informed_per_round()[0], 1);
        assert!(report.informed_per_round().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gossip_overlay_broadcast_covers_population() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).unwrap();
        let mut sim = scenario::random_overlay(&config, 300, 2);
        sim.run_cycles(10);
        let report = run(
            &mut SimSampleSource::new(&mut sim),
            300,
            NodeId::new(0),
            &BroadcastConfig::default(),
        );
        assert!(report.coverage() > 0.99, "coverage {}", report.coverage());
    }

    #[test]
    fn zero_fanout_never_spreads() {
        let mut oracle = OracleSource::new(100, 1);
        let config = BroadcastConfig {
            fanout: 0,
            max_rounds: 10,
            stop_when_quiescent: true,
        };
        let report = run(&mut oracle, 100, NodeId::new(0), &config);
        assert_eq!(report.coverage(), 0.01);
        assert_eq!(report.rounds(), 1); // stops immediately: nothing new
    }

    #[test]
    fn rounds_to_reach_fractions() {
        let mut oracle = OracleSource::new(200, 5);
        let report = run(
            &mut oracle,
            200,
            NodeId::new(0),
            &BroadcastConfig::default(),
        );
        let half = report.rounds_to_reach(0.5).unwrap();
        let full = report.rounds_to_reach(1.0).unwrap();
        assert!(half <= full);
        assert_eq!(report.rounds_to_reach(0.0), Some(0));
    }

    #[test]
    fn empty_population() {
        let mut oracle = OracleSource::new(0, 1);
        let report = run(&mut oracle, 0, NodeId::new(0), &BroadcastConfig::default());
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn max_rounds_is_respected() {
        let mut oracle = OracleSource::new(100_000, 1);
        let config = BroadcastConfig {
            fanout: 1,
            max_rounds: 3,
            stop_when_quiescent: false,
        };
        let report = run(&mut oracle, 100_000, NodeId::new(0), &config);
        assert_eq!(report.rounds(), 3);
        assert!(report.coverage() < 1.0);
    }
}
