//! Epidemic broadcast (rumor spreading) over a peer sampling service.
//!
//! The classic push-infect model: every informed node pushes the rumor to
//! `fanout` sampled peers per round. With a uniform sampler this floods the
//! group in `O(log N)` rounds with high probability; with a gossip sampler
//! the speed and final coverage depend on the overlay's properties — exactly
//! the dependence the paper's evaluation quantifies.
//!
//! The run is membership-aware: each round re-reads the source's live set
//! ([`SampleSource::live_ids`]), so coverage is always a fraction of who
//! actually participates. Nodes that crash mid-run stop counting (and stop
//! sending), joiners enter uninformed, and pushes that land on dead ids are
//! tallied as [`wasted`](BroadcastReport::wasted) instead of silently
//! succeeding.

use pss_core::NodeId;

use crate::SampleSource;

/// Broadcast workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastConfig {
    /// Peers each informed node pushes to per round.
    pub fanout: usize,
    /// Hard stop, in rounds.
    pub max_rounds: usize,
    /// Stop as soon as a round infects nobody new.
    pub stop_when_quiescent: bool,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            fanout: 2,
            max_rounds: 100,
            stop_when_quiescent: true,
        }
    }
}

/// Result of a broadcast run. All per-round series index round 0 as the
/// state before the first round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastReport {
    informed_per_round: Vec<usize>,
    live_per_round: Vec<usize>,
    delivered: u64,
    redundant: u64,
    wasted: u64,
}

impl BroadcastReport {
    /// Cumulative number of informed *live* nodes after each round; index 0
    /// is the state before the first round (1 when the origin is live).
    /// Informed nodes that die later drop back out of the count.
    pub fn informed_per_round(&self) -> &[usize] {
        &self.informed_per_round
    }

    /// Live population after each round, aligned with
    /// [`informed_per_round`](Self::informed_per_round).
    pub fn live_per_round(&self) -> &[usize] {
        &self.live_per_round
    }

    /// Rounds actually executed.
    pub fn rounds(&self) -> usize {
        self.informed_per_round.len().saturating_sub(1)
    }

    /// Final fraction of the *live* population informed, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let live = *self.live_per_round.last().unwrap_or(&0);
        if live == 0 {
            return 0.0;
        }
        *self.informed_per_round.last().unwrap_or(&0) as f64 / live as f64
    }

    /// First round by which at least `fraction` of the then-live population
    /// was informed, if ever.
    pub fn rounds_to_reach(&self, fraction: f64) -> Option<usize> {
        self.informed_per_round
            .iter()
            .zip(&self.live_per_round)
            .position(|(&informed, &live)| informed >= (fraction * live as f64).ceil() as usize)
    }

    /// Pushes that landed on a live node (first deliveries and redundant
    /// ones alike).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Pushes that landed on an already-informed live node.
    pub fn redundant(&self) -> u64 {
        self.redundant
    }

    /// Pushes addressed to a node that was dead on arrival.
    pub fn wasted(&self) -> u64 {
        self.wasted
    }
}

/// Runs a push broadcast from `origin`, drawing peers from `source`.
///
/// `n` is the static id space used when the source exposes no membership
/// (`live_ids() == None`); membership-tracking sources override it every
/// round. Each round: every informed live node draws `config.fanout` peers
/// and informs them; then the source's membership layer advances one round,
/// which may kill informed nodes or admit uninformed joiners.
///
/// # Examples
///
/// ```
/// use pss_core::NodeId;
/// use pss_protocols::{broadcast, OracleSource};
///
/// let mut oracle = OracleSource::new(1000, 7);
/// let report = broadcast::run(
///     &mut oracle,
///     1000,
///     NodeId::new(0),
///     &broadcast::BroadcastConfig::default(),
/// );
/// assert_eq!(report.coverage(), 1.0);
/// assert!(report.rounds() < 30);
/// ```
pub fn run(
    source: &mut impl SampleSource,
    n: usize,
    origin: NodeId,
    config: &BroadcastConfig,
) -> BroadcastReport {
    // The live set a static source implies: exactly 0..n.
    fn live_or_range(ids: Option<Vec<NodeId>>, n: usize) -> Vec<NodeId> {
        ids.unwrap_or_else(|| (0..n as u64).map(NodeId::new).collect())
    }
    // Refreshes the liveness bitmap, growing both it and `informed` to
    // cover every live id (joiners can exceed the static id space).
    fn mark_live(live: &[NodeId], bit: &mut Vec<bool>, informed: &mut Vec<bool>) {
        let max = live.iter().map(|id| id.as_index() + 1).max().unwrap_or(0);
        bit.clear();
        bit.resize(max, false);
        if informed.len() < max {
            informed.resize(max, false);
        }
        for id in live {
            bit[id.as_index()] = true;
        }
    }
    fn count_informed(live: &[NodeId], informed: &[bool]) -> usize {
        live.iter()
            .filter(|id| informed.get(id.as_index()).copied().unwrap_or(false))
            .count()
    }

    let mut informed: Vec<bool> = vec![false; n];
    let mut live_bit: Vec<bool> = Vec::new();
    let mut delivered = 0u64;
    let mut redundant = 0u64;
    let mut wasted = 0u64;

    let mut live = live_or_range(source.live_ids(), n);
    mark_live(&live, &mut live_bit, &mut informed);
    if live_bit.get(origin.as_index()).copied().unwrap_or(false) {
        informed[origin.as_index()] = true;
    }
    let mut history = vec![count_informed(&live, &informed)];
    let mut live_history = vec![live.len()];

    let mut senders: Vec<NodeId> = Vec::new();
    for _ in 0..config.max_rounds {
        if !live.is_empty() && history.last() == live_history.last() {
            break;
        }
        senders.clear();
        senders.extend(live.iter().copied().filter(|id| informed[id.as_index()]));
        let mut newly = 0usize;
        for &sender in &senders {
            for _ in 0..config.fanout {
                if let Some(peer) = source.sample_for(sender) {
                    let idx = peer.as_index();
                    if !live_bit.get(idx).copied().unwrap_or(false) {
                        wasted += 1;
                        continue;
                    }
                    delivered += 1;
                    if informed.len() <= idx {
                        informed.resize(idx + 1, false);
                    }
                    if informed[idx] {
                        redundant += 1;
                    } else {
                        informed[idx] = true;
                        newly += 1;
                    }
                }
            }
        }
        source.advance_round();
        live = live_or_range(source.live_ids(), n);
        mark_live(&live, &mut live_bit, &mut informed);
        history.push(count_informed(&live, &informed));
        live_history.push(live.len());
        if config.stop_when_quiescent && newly == 0 {
            break;
        }
    }

    BroadcastReport {
        informed_per_round: history,
        live_per_round: live_history,
        delivered,
        redundant,
        wasted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineSampleSource, OracleSource, SimSampleSource};
    use pss_core::{PolicyTriple, ProtocolConfig};
    use pss_sim::{scenario, Engine};

    #[test]
    fn oracle_broadcast_reaches_everyone() {
        let mut oracle = OracleSource::new(500, 1);
        let report = run(
            &mut oracle,
            500,
            NodeId::new(3),
            &BroadcastConfig::default(),
        );
        assert_eq!(report.coverage(), 1.0);
        // log-time dissemination: fanout 2 should finish way below 50 rounds.
        assert!(report.rounds() < 30, "took {} rounds", report.rounds());
        // Monotone non-decreasing history starting at 1.
        assert_eq!(report.informed_per_round()[0], 1);
        assert!(report.informed_per_round().windows(2).all(|w| w[0] <= w[1]));
        assert!(report.live_per_round().iter().all(|&l| l == 500));
        assert_eq!(report.wasted(), 0);
        assert!(report.delivered() >= report.redundant());
    }

    #[test]
    fn gossip_overlay_broadcast_covers_population() {
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).unwrap();
        let mut sim = scenario::random_overlay(&config, 300, 2);
        sim.run_cycles(10);
        let report = run(
            &mut SimSampleSource::new(&mut sim),
            300,
            NodeId::new(0),
            &BroadcastConfig::default(),
        );
        assert!(report.coverage() > 0.99, "coverage {}", report.coverage());
    }

    #[test]
    fn coverage_counts_only_live_nodes_under_churn() {
        // Regression for the static-denominator bug: kill a third of the
        // overlay mid-run and the report must still be able to read 100 %
        // of the *live* population, with rounds_to_reach(1.0) firing.
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).unwrap();
        let mut sim = scenario::random_overlay(&config, 240, 6);
        sim.run_cycles(10);
        Engine::kill_random(&mut sim, 80);
        sim.run_cycles(5); // let views heal a little
        let mut src = EngineSampleSource::new(&mut sim, 3);
        let origin = src.live_ids().unwrap()[0];
        let report = run(&mut src, 240, origin, &BroadcastConfig::default());
        assert_eq!(*report.live_per_round().last().unwrap(), 160);
        assert!(
            report.coverage() > 0.99,
            "live coverage {}",
            report.coverage()
        );
        assert!(
            report.rounds_to_reach(1.0).is_some(),
            "rounds_to_reach(1.0) never fired: {:?} / {:?}",
            report.informed_per_round(),
            report.live_per_round()
        );
    }

    #[test]
    fn dead_deliveries_count_as_wasted() {
        // SimSampleSource hands out raw view entries, dead links included;
        // right after a massacre the broadcast must observe wasted pushes.
        let config = ProtocolConfig::new(PolicyTriple::newscast(), 15).unwrap();
        let mut sim = scenario::random_overlay(&config, 200, 8);
        sim.run_cycles(10);
        Engine::kill_random(&mut sim, 100);
        let origin = sim.alive_ids()[0];
        let mut src = SimSampleSource::new(&mut sim);
        let report = run(&mut src, 200, origin, &BroadcastConfig::default());
        assert!(report.wasted() > 0, "no wasted pushes right after a kill");
        assert!(*report.live_per_round().last().unwrap() <= 100);
    }

    #[test]
    fn zero_fanout_never_spreads() {
        let mut oracle = OracleSource::new(100, 1);
        let config = BroadcastConfig {
            fanout: 0,
            max_rounds: 10,
            stop_when_quiescent: true,
        };
        let report = run(&mut oracle, 100, NodeId::new(0), &config);
        assert_eq!(report.coverage(), 0.01);
        assert_eq!(report.rounds(), 1); // stops immediately: nothing new
    }

    #[test]
    fn rounds_to_reach_fractions() {
        let mut oracle = OracleSource::new(200, 5);
        let report = run(
            &mut oracle,
            200,
            NodeId::new(0),
            &BroadcastConfig::default(),
        );
        let half = report.rounds_to_reach(0.5).unwrap();
        let full = report.rounds_to_reach(1.0).unwrap();
        assert!(half <= full);
        assert_eq!(report.rounds_to_reach(0.0), Some(0));
    }

    #[test]
    fn empty_population() {
        let mut oracle = OracleSource::new(0, 1);
        let report = run(&mut oracle, 0, NodeId::new(0), &BroadcastConfig::default());
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn max_rounds_is_respected() {
        let mut oracle = OracleSource::new(100_000, 1);
        let config = BroadcastConfig {
            fanout: 1,
            max_rounds: 3,
            stop_when_quiescent: false,
        };
        let report = run(&mut oracle, 100_000, NodeId::new(0), &config);
        assert_eq!(report.rounds(), 3);
        assert!(report.coverage() < 1.0);
    }
}
