//! Property-based tests for the application layer: liveness accounting in
//! broadcast and aggregation, and the oracle-vs-overlay decay ordering.

use proptest::prelude::*;
use pss_core::{NodeId, PolicyTriple, ProtocolConfig};
use pss_protocols::{
    aggregation, broadcast, run_under_workload, AppConfig, OracleSource, SampleSource, Sampler,
    SimSampleSource,
};
use pss_sim::workload::Workload;
use pss_sim::{scenario, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A live-filtered peer source over a [`Simulation`] that replays a
/// scripted churn trace: each round kills and joins a scheduled number of
/// nodes *after* the application's sends, exactly like the engine sources
/// but with membership under test control.
struct ChurnTraceSource {
    sim: Simulation,
    rng: SmallRng,
    trace: Vec<(usize, usize)>,
    round: usize,
}

impl ChurnTraceSource {
    fn new(sim: Simulation, seed: u64, trace: Vec<(usize, usize)>) -> Self {
        ChurnTraceSource {
            sim,
            rng: SmallRng::seed_from_u64(seed),
            trace,
            round: 0,
        }
    }
}

impl SampleSource for ChurnTraceSource {
    fn sample_for(&mut self, node: NodeId) -> Option<NodeId> {
        let view = self.sim.view_of(node)?;
        let live: Vec<NodeId> = view.ids().filter(|&id| self.sim.is_alive(id)).collect();
        if live.is_empty() {
            return None;
        }
        Some(live[self.rng.random_range(0..live.len())])
    }

    fn advance_round(&mut self) {
        if let Some(&(kills, joins)) = self.trace.get(self.round) {
            self.sim.kill_random(kills);
            if joins > 0 {
                self.sim.add_nodes_with_random_contacts(joins, 3);
            }
        }
        self.round += 1;
        self.sim.run_cycle();
    }

    fn is_live(&self, node: NodeId) -> bool {
        self.sim.is_alive(node)
    }

    fn live_ids(&self) -> Option<Vec<NodeId>> {
        Some(self.sim.alive_ids())
    }
}

fn converged_sim(n: usize, seed: u64) -> Simulation {
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 8).unwrap();
    let mut sim = scenario::random_overlay(&config, n, seed);
    sim.run_cycles(10);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // On a static membership the informed count never shrinks, never
    // exceeds the population, and the delivery ledger balances exactly:
    // every delivered push either informed a node or was redundant, and
    // nobody was dead to waste one on.
    #[test]
    fn broadcast_history_is_monotone_and_ledger_balances_when_static(
        n in 10usize..200,
        fanout in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let mut oracle = OracleSource::new(n, seed);
        let config = broadcast::BroadcastConfig {
            fanout,
            max_rounds: 40,
            stop_when_quiescent: true,
        };
        let report = broadcast::run(&mut oracle, n, NodeId::new(0), &config);
        let history = report.informed_per_round();
        prop_assert!(history.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(history.iter().all(|&i| i <= n));
        prop_assert_eq!(report.wasted(), 0);
        let newly = (history.last().unwrap() - 1) as u64; // origin is free
        prop_assert_eq!(report.delivered(), newly + report.redundant());
    }

    // Under an arbitrary churn trace the informed count is bounded by the
    // live count every round (deaths can shrink it — monotonicity is a
    // static-membership property), and a live-filtered source never
    // wastes a delivery.
    #[test]
    fn broadcast_informed_is_bounded_by_live_under_churn(
        n in 30usize..60,
        seed in 0u64..500,
        trace in prop::collection::vec((0usize..3, 0usize..3), 6..14),
    ) {
        let rounds = trace.len();
        let mut source = ChurnTraceSource::new(converged_sim(n, seed), seed ^ 0xc0de, trace);
        let config = broadcast::BroadcastConfig {
            fanout: 2,
            max_rounds: rounds,
            stop_when_quiescent: false,
        };
        let report = broadcast::run(&mut source, n, NodeId::new(0), &config);
        let informed = report.informed_per_round();
        let live = report.live_per_round();
        prop_assert_eq!(informed.len(), live.len());
        for (i, (&inf, &liv)) in informed.iter().zip(live).enumerate() {
            prop_assert!(inf <= liv, "round {i}: {inf} informed > {liv} live");
        }
        prop_assert_eq!(report.wasted(), 0);
        prop_assert!(report.coverage() <= 1.0);
    }

    // Push-pull averaging moves value between pairs, never in or out of
    // the system: with nobody dying, the live mean is conserved and the
    // variance never grows.
    #[test]
    fn aggregation_conserves_mass_when_nobody_dies(
        n in 10usize..150,
        rounds in 1usize..25,
        seed in 0u64..1_000,
    ) {
        let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 10.0).collect();
        let initial_mean = values.iter().sum::<f64>() / n as f64;
        let mut oracle = OracleSource::new(n, seed);
        let report = aggregation::run(&mut oracle, &mut values, rounds);
        prop_assert_eq!(report.wasted(), 0);
        let final_mean = values.iter().sum::<f64>() / n as f64;
        prop_assert!((final_mean - initial_mean).abs() < 1e-9);
        let vars = report.variance_per_round();
        prop_assert!(vars.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    // Raw view entries keep pointing at the departed: after a kill, the
    // sequential source's dead links surface as wasted exchanges, and the
    // variance trajectory is still finite over the survivors.
    #[test]
    fn aggregation_counts_wasted_exchanges_on_dead_links(
        n in 40usize..80,
        kill in 10usize..20,
        seed in 0u64..500,
    ) {
        let mut sim = converged_sim(n, seed);
        sim.kill_random(kill);
        let mut values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let report =
            aggregation::run(&mut SimSampleSource::new(&mut sim), &mut values, 12);
        prop_assert!(report.wasted() > 0, "no dead link was ever drawn");
        prop_assert!(report.variance_per_round().iter().all(|v| v.is_finite()));
    }

    // At any fixed seed, the ideal uniform oracle never decays the
    // aggregate variance slower than the overlay sampler on the same
    // engine under the same churn schedule (small tolerance: both decay
    // estimates are finite-sample).
    #[test]
    fn oracle_decay_never_trails_overlay_under_churn(
        nodes in 100usize..180,
        seed in 0u64..50,
    ) {
        let schedule = "quiet:4,kill:0.2,churn:0.01x8";
        let compiled = Workload::parse(schedule, seed).unwrap().compile(nodes);
        let decay = |sampler: Sampler| {
            let app = AppConfig { fanout: 2, sampler, seed: seed ^ 0xa99, ..AppConfig::default() };
            let config = ProtocolConfig::new(PolicyTriple::newscast(), 12).unwrap();
            let mut sim = scenario::random_overlay(&config, nodes, seed);
            let (_, report) = run_under_workload(&mut sim, &compiled, 12, &app);
            report.decay_factor()
        };
        let oracle = decay(Sampler::Oracle);
        let overlay = decay(Sampler::Overlay);
        prop_assert!(
            oracle <= overlay + 0.05,
            "oracle decay {oracle:.3} > overlay decay {overlay:.3}"
        );
    }
}
