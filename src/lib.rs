//! # peer-sampling
//!
//! A complete Rust implementation and experimental evaluation suite for the
//! **gossip-based peer sampling service**, reproducing
//!
//! > Márk Jelasity, Rachid Guerraoui, Anne-Marie Kermarrec, Maarten van
//! > Steen. *The Peer Sampling Service: Experimental Evaluation of
//! > Unstructured Gossip-Based Implementations.* Middleware 2004.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] ([`pss_core`]) — the protocol framework: partial views, the
//!   `(peer selection, view selection, view propagation)` policy space, the
//!   Figure-1 state machine, and the `init`/`get_peer` service API.
//! * [`sim`] ([`pss_sim`]) — cycle-driven (paper model) and event-driven
//!   simulators, both sharded across worker threads with a shared
//!   deterministic mailbox skeleton; bootstrap scenarios, failure
//!   injection, observers.
//! * [`net`] ([`pss_net`]) — the network layer: the versioned wire codec
//!   ([`pss_core::wire`]), UDP and deterministic in-memory transports, the
//!   multi-node [`pss_net::NetRuntime`], and the loopback cluster harness.
//! * [`graph`] ([`pss_graph`]) — overlay graph analysis: components, path
//!   lengths, clustering, degree distributions, generators.
//! * [`stats`] ([`pss_stats`]) — summaries, histograms, autocorrelation.
//! * [`protocols`] ([`pss_protocols`]) — epidemic broadcast and gossip
//!   averaging running on the sampling service.
//!
//! The most common types are re-exported at the crate root.
//!
//! # Quickstart
//!
//! Build a 1000-node Newscast overlay, converge it, and inspect it:
//!
//! ```
//! use peer_sampling::{scenario, PolicyTriple, ProtocolConfig};
//!
//! let config = ProtocolConfig::new(PolicyTriple::newscast(), 30)?;
//! let mut sim = scenario::random_overlay(&config, 1000, 42);
//! sim.run_cycles(30);
//!
//! let graph = sim.snapshot().undirected();
//! assert!(peer_sampling::graph::components::is_connected(&graph));
//! assert!(graph.average_degree() >= 30.0);
//! # Ok::<(), peer_sampling::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pss_core as core;
pub use pss_graph as graph;
pub use pss_net as net;
pub use pss_protocols as protocols;
pub use pss_sim as sim;
pub use pss_stats as stats;

pub use pss_core::{
    ConfigError, GossipNode, NodeDescriptor, NodeId, OracleSampler, PeerSampler, PeerSamplingNode,
    PeerSelection, PolicyTriple, ProtocolConfig, View, ViewPropagation, ViewSelection,
};
pub use pss_sim::{
    scenario, EventConfig, EventSimulation, ShardedEventSimulation, ShardedSimulation, Simulation,
    Snapshot, Workload,
};
