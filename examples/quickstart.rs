//! Quickstart: build a Newscast overlay, let it converge, sample peers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use peer_sampling::{scenario, NodeId, PolicyTriple, ProtocolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a protocol instance from the paper's design space. Newscast
    //    is (rand,head,pushpull); Lpbcast's sampler is (rand,rand,push).
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 30)?;
    println!("protocol: {config}");

    // 2. Bootstrap 1000 nodes from a random initial topology and run the
    //    gossip for 50 cycles.
    let mut sim = scenario::random_overlay(&config, 1000, 42);
    sim.run_cycles(50);

    // 3. Inspect the resulting communication topology.
    let snapshot = sim.snapshot();
    let graph = snapshot.undirected();
    let components = peer_sampling::graph::components::connected_components(&graph);
    println!("nodes:               {}", graph.node_count());
    println!("undirected edges:    {}", graph.edge_count());
    println!("average degree:      {:.2}", graph.average_degree());
    println!(
        "clustering coeff:    {:.4}",
        peer_sampling::graph::clustering::clustering_coefficient(&graph)
    );
    println!(
        "average path length: {:.3}",
        peer_sampling::graph::paths::average_path_length(&graph).average
    );
    println!("connected:           {}", components.is_connected());

    // 4. Use the service: getPeer() returns a peer drawn from the view.
    print!("five samples for node 0:");
    for _ in 0..5 {
        let peer = sim.get_peer(NodeId::new(0)).expect("view is non-empty");
        print!(" {peer}");
    }
    println!();
    Ok(())
}
