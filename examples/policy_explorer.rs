//! Explore the full 27-point protocol design space at small scale.
//!
//! Prints, for every (peer selection, view selection, propagation) triple,
//! the converged overlay's shape and whether it exhibits the pathologies
//! that made the paper exclude it (Section 4.3): star collapse for
//! pull-only, join-deafness for tail view selection, clustering for head
//! peer selection.
//!
//! ```sh
//! cargo run --release --example policy_explorer
//! ```

use peer_sampling::{scenario, PolicyTriple, ProtocolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 400;
    const C: usize = 15;

    println!(
        "{:<26} {:>6} {:>9} {:>9} {:>10}  paper verdict",
        "policy", "comps", "clust", "maxdeg/N", "join deg"
    );
    for policy in PolicyTriple::all() {
        let config = ProtocolConfig::new(policy, C)?;
        let mut sim = scenario::random_overlay(&config, N, 23);
        sim.run_cycles(80);

        // Join phase: 40 fresh nodes, one contact each.
        let joined_from = sim.node_count();
        sim.add_nodes_with_random_contacts(40, 1);
        sim.run_cycles(25);

        let snapshot = sim.snapshot();
        let graph = snapshot.undirected();
        let components = peer_sampling::graph::components::connected_components(&graph);
        let clustering = peer_sampling::graph::clustering::clustering_coefficient(&graph);
        let max_deg_frac = graph.max_degree() as f64 / (graph.node_count() - 1) as f64;
        let joiner_deg: f64 = (joined_from..joined_from + 40)
            .filter_map(|i| snapshot.index_of(peer_sampling::NodeId::new(i as u64)))
            .map(|idx| graph.degree(idx) as f64)
            .sum::<f64>()
            / 40.0;

        println!(
            "{:<26} {:>6} {:>9.4} {:>9.3} {:>10.1}  {}",
            policy.to_string(),
            components.count(),
            clustering,
            max_deg_frac,
            joiner_deg,
            if policy.is_degenerate() {
                "degenerate"
            } else {
                "kept"
            }
        );
    }
    Ok(())
}
