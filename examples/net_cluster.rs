//! Loopback UDP cluster smoke: N nodes across K runtime threads, real
//! sockets, real wire frames — optionally under membership dynamics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example net_cluster            # 256 nodes, 2 runtimes
//! NET_NODES=1000 NET_RUNTIMES=4 cargo run --release --example net_cluster
//!
//! # Dynamics: catastrophic kill + sustained churn through the workload
//! # scheduler (same schedule machinery the simulators run):
//! NET_KILL_FRACTION=0.5 NET_CHURN=0.01 cargo run --release --example net_cluster
//! ```
//!
//! Without dynamics, exits non-zero unless the overlay converges (≥ 99%
//! of nodes reach full views) with **zero** codec errors. With
//! `NET_CHURN` / `NET_KILL_FRACTION` set, the gate becomes a *recovery*
//! gate: by the final period the live overlay must be ≥ 95% full views,
//! essentially one component (≥ 95%), with dead links decayed below 10%
//! of view entries — still with zero codec errors. Both are CI gates.

use std::process::ExitCode;

use pss_core::{PolicyTriple, ProtocolConfig};
use pss_net::cluster::{run, ClusterConfig};
use pss_sim::workload::Workload;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

fn main() -> ExitCode {
    let nodes = env_or("NET_NODES", 256) as usize;
    let runtimes = env_or("NET_RUNTIMES", 2) as usize;
    let periods = env_or("NET_PERIODS", 25);
    let view_size = env_or("NET_VIEW_SIZE", 20) as usize;
    let period_ms = env_or("NET_PERIOD_MS", 100);
    // Dynamics knobs: a catastrophic kill fraction and/or a balanced
    // per-period churn rate, compiled into a workload schedule.
    let kill_fraction = env_f64("NET_KILL_FRACTION").clamp(0.0, 1.0);
    let churn_rate = env_f64("NET_CHURN").max(0.0);
    let dynamic = kill_fraction > 0.0 || churn_rate > 0.0;

    // A workload's period count overrides NET_PERIODS: a third of the
    // budget converges the overlay, the rest recovers, and both windows
    // are floored at 5 periods (which can lengthen short budgets — report
    // the real total).
    let mut total_periods = periods;
    let workload = dynamic.then(|| {
        let quiet = (periods / 3).max(5);
        let rest = periods.saturating_sub(quiet).max(5);
        // The instantaneous kill merges into the first recovery period,
        // so the schedule spans exactly quiet + rest periods.
        total_periods = quiet + rest;
        let mut w = Workload::new(20040601).quiet(quiet);
        if kill_fraction > 0.0 {
            w = w.catastrophe(kill_fraction);
        }
        if churn_rate > 0.0 {
            w = w.churn(churn_rate, rest);
        } else {
            w = w.quiet(rest);
        }
        w
    });

    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), view_size).expect("valid c");
    let config = ClusterConfig {
        nodes,
        runtimes,
        protocol,
        period_ms,
        jitter_ms: period_ms / 5,
        periods,
        introducers: 3,
        seed: 20040601,
        workload,
        honest_policy: None,
        broadcast: None,
    };
    println!(
        "loopback cluster: {nodes} nodes / {runtimes} runtimes, c = {view_size}, \
         {total_periods} periods of {period_ms} ms{}",
        if dynamic {
            format!(" (kill {kill_fraction}, churn {churn_rate}/period)")
        } else {
            String::new()
        }
    );
    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cluster failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    for r in &report.records {
        println!(
            "period {:>3}: {:>4} live, {:>5.1}% full views, in-degree {:>5.2} ± {:>5.2}, \
             {:>4.1}% dead links, {:>5.1}% in largest component",
            r.period,
            r.live,
            r.full_fraction() * 100.0,
            r.in_degree_mean,
            r.in_degree_sd,
            r.dead_link_fraction() * 100.0,
            r.component_fraction() * 100.0,
        );
    }
    let stats = &report.stats;
    println!(
        "{} frames in / {} out in {:.1?} ({:.0} frames/s, {:.0} exchanges/s); \
         {} codec errors, {} timeouts, {} send failures",
        stats.frames_in,
        stats.frames_out,
        report.elapsed,
        report.frames_per_sec(),
        report.exchanges_per_sec(),
        stats.decode_failures(),
        stats.timeouts,
        stats.send_failures
    );

    let last = report.records.last().expect("at least one period");
    let clean = stats.decode_failures() == 0;
    let healthy = if dynamic {
        // Recovery gate: the overlay took real damage and must have healed.
        last.full_fraction() >= 0.95
            && last.component_fraction() >= 0.95
            && last.dead_link_fraction() <= 0.10
    } else {
        last.full_fraction() >= 0.99
    };
    match report.converged_at {
        Some(p) => println!("converged (≥99% full views) at period {p}"),
        None => println!("never reached 99% full views"),
    }
    if healthy && clean {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAILED: healthy = {healthy}, codec clean = {clean} \
             ({}/{} full views, {:.1}% dead links, {:.1}% largest component, {} codec errors)",
            last.full_views,
            last.live,
            last.dead_link_fraction() * 100.0,
            last.component_fraction() * 100.0,
            stats.decode_failures()
        );
        ExitCode::FAILURE
    }
}
