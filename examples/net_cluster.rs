//! Loopback UDP cluster smoke: N nodes across K runtime threads, real
//! sockets, real wire frames.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example net_cluster            # 256 nodes, 2 runtimes
//! NET_NODES=1000 NET_RUNTIMES=4 cargo run --release --example net_cluster
//! ```
//!
//! Exits non-zero unless the overlay converges (≥ 99% of nodes reach full
//! views) with **zero** codec errors — the CI loopback smoke gate.

use std::process::ExitCode;

use pss_core::{PolicyTriple, ProtocolConfig};
use pss_net::cluster::{run, ClusterConfig};

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let nodes = env_or("NET_NODES", 256) as usize;
    let runtimes = env_or("NET_RUNTIMES", 2) as usize;
    let periods = env_or("NET_PERIODS", 25);
    let view_size = env_or("NET_VIEW_SIZE", 20) as usize;
    let period_ms = env_or("NET_PERIOD_MS", 100);

    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), view_size).expect("valid c");
    let config = ClusterConfig {
        nodes,
        runtimes,
        protocol,
        period_ms,
        jitter_ms: period_ms / 5,
        periods,
        introducers: 3,
        seed: 20040601,
    };
    println!(
        "loopback cluster: {nodes} nodes / {runtimes} runtimes, c = {view_size}, \
         {periods} periods of {period_ms} ms"
    );
    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cluster failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    for p in &report.periods {
        println!(
            "period {:>3}: {:>5.1}% full views, in-degree {:>5.2} ± {:>5.2}",
            p.period,
            p.full_fraction() * 100.0,
            p.in_degree_mean,
            p.in_degree_sd
        );
    }
    let stats = &report.stats;
    println!(
        "{} frames in / {} out in {:.1?} ({:.0} frames/s, {:.0} exchanges/s); \
         {} codec errors, {} timeouts, {} send failures",
        stats.frames_in,
        stats.frames_out,
        report.elapsed,
        report.frames_per_sec(),
        report.exchanges_per_sec(),
        stats.decode_failures(),
        stats.timeouts,
        stats.send_failures
    );

    let last = report.periods.last().expect("at least one period");
    let converged = last.full_fraction() >= 0.99;
    let clean = stats.decode_failures() == 0;
    match report.converged_at {
        Some(p) => println!("converged (≥99% full views) at period {p}"),
        None => println!("never reached 99% full views"),
    }
    if converged && clean {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAILED: converged = {converged}, codec clean = {clean} \
             ({}/{} full views, {} codec errors)",
            last.full_views,
            last.nodes,
            stats.decode_failures()
        );
        ExitCode::FAILURE
    }
}
