//! Gossip averaging (push-pull aggregation) over the sampling service.
//!
//! Every node holds a value; each round every node averages with a sampled
//! peer. With uniform sampling the variance drops by ≈ 1/(2√e) ≈ 0.303 per
//! round. The example shows how close gossip-based samplers get.
//!
//! ```sh
//! cargo run --release --example aggregation
//! ```

use peer_sampling::protocols::aggregation;
use peer_sampling::protocols::{OracleSource, SimSampleSource};
use peer_sampling::{scenario, PolicyTriple, ProtocolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 2000;
    const ROUNDS: usize = 24;

    // Bimodal initial load: half the nodes at 0, half at 100.
    let initial = || -> Vec<f64> {
        (0..N)
            .map(|i| if i % 2 == 0 { 0.0 } else { 100.0 })
            .collect()
    };

    println!("push-pull averaging, {N} nodes, {ROUNDS} rounds");
    println!(
        "{:<24} {:>12} {:>16} {:>12}",
        "sampler", "final var", "decay per round", "mean drift"
    );

    let mut values = initial();
    let mut oracle = OracleSource::new(N, 3);
    let report = aggregation::run(&mut oracle, &mut values, ROUNDS);
    print_row("uniform oracle", &report, &values);

    for policy in [
        PolicyTriple::newscast(),
        "(rand,rand,pushpull)".parse::<PolicyTriple>()?,
        "(tail,head,pushpull)".parse::<PolicyTriple>()?,
    ] {
        let config = ProtocolConfig::new(policy, 30)?;
        let mut sim = scenario::random_overlay(&config, N, 17);
        sim.run_cycles(50);
        let mut values = initial();
        let report = aggregation::run(&mut SimSampleSource::new(&mut sim), &mut values, ROUNDS);
        print_row(&policy.to_string(), &report, &values);
    }
    Ok(())
}

fn print_row(name: &str, report: &aggregation::AggregationReport, values: &[f64]) {
    let final_var = report
        .variance_per_round()
        .last()
        .copied()
        .unwrap_or(f64::NAN);
    let mean_now = values.iter().sum::<f64>() / values.len() as f64;
    println!(
        "{:<24} {:>12.3e} {:>16.3} {:>12.2e}",
        name,
        final_var,
        report.decay_factor(),
        (mean_now - report.mean()).abs()
    );
}
