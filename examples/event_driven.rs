//! The event-driven engine: gossip with timer jitter, latency and loss.
//!
//! The paper's experiments use an idealized synchronous cycle model. This
//! example runs the same protocol under increasingly hostile asynchrony and
//! shows the overlay shrugging it off — the extension result recorded in
//! EXPERIMENTS.md (X2).
//!
//! ```sh
//! cargo run --release --example event_driven
//! ```

use peer_sampling::sim::LatencyModel;
use peer_sampling::{
    EventConfig, EventSimulation, NodeDescriptor, NodeId, PolicyTriple, ProtocolConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: u64 = 1000;
    const PERIOD: u64 = 1000; // abstract ticks per gossip period

    let protocol = ProtocolConfig::new(PolicyTriple::newscast(), 30)?;
    println!("protocol: {protocol}, {N} nodes, 60 periods of simulated time");
    println!(
        "{:>10} {:>10} {:>8} {:>12} {:>11} {:>10}",
        "jitter", "latency", "loss", "avg degree", "clustering", "connected"
    );

    let settings = [
        (0u64, LatencyModel::Zero, 0.00),
        (100, LatencyModel::Uniform { min: 10, max: 100 }, 0.00),
        (300, LatencyModel::Uniform { min: 10, max: 300 }, 0.05),
        (450, LatencyModel::Uniform { min: 50, max: 500 }, 0.20),
    ];

    for (jitter, latency, loss) in settings {
        let mut sim = EventSimulation::new(
            protocol.clone(),
            EventConfig {
                period: PERIOD,
                jitter,
                latency,
                loss_probability: loss,
            },
            2026,
        )
        .expect("valid event config");
        // Tree bootstrap: every joiner knows an introducer.
        sim.add_node([]);
        for i in 1..N {
            sim.add_node([NodeDescriptor::fresh(NodeId::new(i / 2))]);
        }
        sim.run_for(60 * PERIOD);

        let graph = sim.snapshot().undirected();
        let connected = peer_sampling::graph::components::is_connected(&graph);
        let clustering = peer_sampling::graph::clustering::clustering_coefficient(&graph);
        let latency_text = match latency {
            LatencyModel::Zero => "0".to_owned(),
            LatencyModel::Uniform { min, max } => format!("{min}-{max}"),
        };
        println!(
            "{:>10} {:>10} {:>7.0}% {:>12.2} {:>11.4} {:>10}",
            format!("±{jitter}"),
            latency_text,
            loss * 100.0,
            graph.average_degree(),
            clustering,
            if connected { "yes" } else { "NO" },
        );
    }

    // The same asynchrony, sharded: the conservative-lookahead engine runs
    // the event queues shard-parallel, and worker count never changes
    // results (only wall-clock) — the trajectory is fixed by (seed, shards).
    println!("\nsharded event engine (N = 10_000, lookahead = min latency):");
    for workers in [1usize, 4] {
        let mut sim = peer_sampling::sim::scenario::event_random_overlay_sharded(
            &protocol,
            EventConfig::default(),
            10_000,
            2026,
            4,
        )?;
        sim.set_workers(workers);
        sim.run_for(20 * PERIOD);
        let report = sim.report();
        println!(
            "  4 shards / {workers} worker(s): {} events, {} exchanges completed, \
             avg degree {:.2}",
            sim.events_processed(),
            report.exchanges_completed,
            sim.snapshot().undirected().average_degree(),
        );
    }
    Ok(())
}
