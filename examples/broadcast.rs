//! Epidemic broadcast over different peer sampling services.
//!
//! Reproduces the paper's motivation: gossip dissemination speed depends on
//! the quality of the underlying sampling service. Compares the ideal
//! uniform oracle against overlays maintained by three protocol instances.
//!
//! ```sh
//! cargo run --release --example broadcast
//! ```

use peer_sampling::protocols::broadcast::{run, BroadcastConfig};
use peer_sampling::protocols::{OracleSource, SimSampleSource};
use peer_sampling::{scenario, NodeId, PolicyTriple, ProtocolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 2000;
    let workload = BroadcastConfig {
        fanout: 2,
        max_rounds: 60,
        stop_when_quiescent: true,
    };

    println!("push broadcast, fanout 2, {N} nodes");
    println!(
        "{:<24} {:>9} {:>14}",
        "sampler", "coverage", "rounds to 99%"
    );

    // The ideal service: uniform random over the whole group.
    let mut oracle = OracleSource::new(N, 7);
    let report = run(&mut oracle, N, NodeId::new(0), &workload);
    print_row(
        "uniform oracle",
        report.coverage(),
        report.rounds_to_reach(0.99),
    );

    // Gossip-based services.
    for policy in [
        PolicyTriple::newscast(),
        "(rand,rand,pushpull)".parse::<PolicyTriple>()?,
        PolicyTriple::lpbcast(),
    ] {
        let config = ProtocolConfig::new(policy, 30)?;
        let mut sim = scenario::random_overlay(&config, N, 11);
        sim.run_cycles(50); // converge the overlay first
        let report = run(
            &mut SimSampleSource::new(&mut sim),
            N,
            NodeId::new(0),
            &workload,
        );
        print_row(
            &policy.to_string(),
            report.coverage(),
            report.rounds_to_reach(0.99),
        );
    }
    Ok(())
}

fn print_row(name: &str, coverage: f64, rounds: Option<usize>) {
    println!(
        "{:<24} {:>8.1}% {:>14}",
        name,
        coverage * 100.0,
        rounds.map_or("-".into(), |r| r.to_string())
    );
}
