//! Self-healing under catastrophic failure and continuous churn.
//!
//! Shows the paper's Figure 7 result live: after killing half the overlay,
//! head view selection flushes dead links exponentially fast while random
//! view selection barely heals — and an overlay under continuous churn
//! stays connected with head selection.
//!
//! ```sh
//! cargo run --release --example churn
//! ```

use peer_sampling::{scenario, PolicyTriple, ProtocolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 2000;

    println!("== catastrophic failure: kill 50% at once ==");
    for policy in [
        "(rand,head,pushpull)".parse::<PolicyTriple>()?,
        "(rand,rand,pushpull)".parse::<PolicyTriple>()?,
    ] {
        let config = ProtocolConfig::new(policy, 30)?;
        let mut sim = scenario::random_overlay(&config, N, 5);
        sim.run_cycles(60);
        sim.kill_random_fraction(0.5);
        print!("{policy}: dead links");
        for _ in 0..6 {
            sim.run_cycles(5);
            print!(" → {}", sim.dead_link_count());
        }
        let graph = sim.snapshot().undirected();
        println!(
            "   (connected: {})",
            peer_sampling::graph::components::is_connected(&graph)
        );
    }

    println!();
    println!("== continuous churn: 2% of nodes replaced per cycle ==");
    let config = ProtocolConfig::new(PolicyTriple::newscast(), 30)?;
    let mut sim = scenario::random_overlay(&config, N, 9);
    sim.run_cycles(30);
    let churn = N / 50;
    for step in 1..=5 {
        for _ in 0..10 {
            sim.kill_random(churn);
            sim.add_nodes_with_random_contacts(churn, 3);
            sim.run_cycle();
        }
        let graph = sim.snapshot().undirected();
        let components = peer_sampling::graph::components::connected_components(&graph);
        println!(
            "after {:>3} churn cycles: {} live nodes, dead links {}, \
             largest component {}/{}",
            30 + step * 10,
            sim.alive_count(),
            sim.dead_link_count(),
            components.largest(),
            graph.node_count(),
        );
    }
    Ok(())
}
